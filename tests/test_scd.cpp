// Sanity suite for the stochastic-cluster-dynamics estimator of the sampled
// long-time mode (kmc::ScdModel / kmc::ScdStage, docs/SAMPLING.md):
//   - every SCD event moves whole vacancies between size classes, so the
//     total vacancy count is conserved exactly through any trajectory,
//   - the capillarity binding interpolation hits its divacancy and bulk
//     anchors and grows monotonically,
//   - the reported 95% CI halfwidth is exactly 1.96*sd/sqrt(R) over the
//     replicate estimates and shrinks as replicates grow (~1/sqrt(R)),
//   - save()/restore() makes replicates differ only by their RNG streams,
//   - the stage is deterministic for a fixed (seed, window, replicates).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "comm/world.h"
#include "kmc/cluster_stats.h"
#include "kmc/model.h"
#include "kmc/scd.h"
#include "lattice/geometry.h"
#include "util/rng.h"

namespace mmd::kmc {
namespace {

ScdParams tiny_params() {
  ScdParams p;
  p.prefactor = 1e13;
  p.migration_barrier_ev = 0.7;
  p.temperature_k = 600.0;
  p.sites = 2 * 8 * 8 * 8;
  return p;
}

/// MC-time budget that lands the 20-vacancy census mid-coalescence at 600 K,
/// so replicate outcomes genuinely vary (full coalescence would collapse
/// every replicate to one cluster and zero the CI).
constexpr double kMidCoalescenceBudgetS = 1.0e-5;

/// A synthetic census: 20 monovacancies, 4 dimers, 2 size-5 voids.
ClusterStats synthetic_census() {
  ClusterStats census;
  census.size_histogram.add(1, 20);
  census.size_histogram.add(2, 4);
  census.size_histogram.add(5, 2);
  census.num_vacancies = 20 + 8 + 10;
  census.num_clusters = 26;
  return census;
}

TEST(ScdModel, SeedReproducesCensusPopulations) {
  ScdModel model(tiny_params());
  model.seed(synthetic_census());
  EXPECT_EQ(model.population()[1], 20u);
  EXPECT_EQ(model.population()[2], 4u);
  EXPECT_EQ(model.population()[5], 2u);
  EXPECT_EQ(model.total_vacancies(), 38u);
  EXPECT_EQ(model.cluster_count(), 26u);
}

TEST(ScdModel, ConservesVacanciesThroughLongTrajectories) {
  ScdModel model(tiny_params());
  model.seed(synthetic_census());
  const std::uint64_t total = model.total_vacancies();
  util::Rng rng(1234);
  for (int leg = 0; leg < 8; ++leg) {
    const std::uint64_t events = model.advance(1.0e-3, rng, 5000);
    EXPECT_EQ(model.total_vacancies(), total)
        << "conservation broken after leg " << leg << " (" << events
        << " events)";
  }
}

TEST(ScdModel, BindingEnergyHitsAnchorsAndGrowsWithSize) {
  ScdParams p = tiny_params();
  p.binding_dimer_ev = 0.2;
  p.binding_bulk_ev = 1.86;
  ScdModel model(p);
  EXPECT_DOUBLE_EQ(model.binding_ev(2), 0.2);  // divacancy anchor
  double prev = model.binding_ev(2);
  for (std::uint64_t s = 3; s <= 64; ++s) {
    const double b = model.binding_ev(s);
    EXPECT_GT(b, prev) << "binding not monotone at s=" << s;
    prev = b;
  }
  // Large clusters approach the bulk detachment limit from below; the
  // capillarity term decays like s^(-1/3), so the gap closes slowly.
  EXPECT_NEAR(model.binding_ev(1000000000), p.binding_bulk_ev, 1e-2);
  EXPECT_LT(model.binding_ev(1000000000), p.binding_bulk_ev);
}

TEST(ScdModel, SaveRestoreReplaysIdenticalTrajectories) {
  ScdModel model(tiny_params());
  model.seed(synthetic_census());
  const auto seed_pop = model.save();

  util::Rng rng_a(77);
  model.advance(1.0e-3, rng_a);
  const auto traj_a = model.population();

  model.restore(seed_pop);
  util::Rng rng_b(77);
  model.advance(1.0e-3, rng_b);
  EXPECT_EQ(model.population(), traj_a);

  // A different stream diverges (same start, different draws).
  model.restore(seed_pop);
  util::Rng rng_c(78);
  model.advance(1.0e-3, rng_c);
  EXPECT_NE(model.population(), traj_a);
}

TEST(ScdModel, DimerizationConsumesMonovacancies) {
  // Monovacancies only at 300 K: emission is suppressed by the extra binding
  // barrier, so the trajectory is dominated by dimerizations, each consuming
  // two monovacancies into one dimer.
  ScdParams p = tiny_params();
  p.temperature_k = 300.0;
  ScdModel model(p);
  ClusterStats census;
  census.size_histogram.add(1, 10);
  model.seed(census);
  util::Rng rng(5);
  const std::uint64_t events = model.advance(10.0, rng, 3);
  EXPECT_GT(events, 0u);
  EXPECT_LT(model.population()[1], 10u);
  EXPECT_GE(model.population()[2], 1u);
  EXPECT_EQ(model.total_vacancies(), 10u);
}

// ---------------------------------------------------------------------------

/// Synthetic vacancy census for ScdStage: 20 scattered site ids (the stride
/// keeps them out of 1NN range, so the census is 20 monovacancies).
core::StageState scattered_vacancies() {
  core::StageState state;
  for (std::int64_t gid = 0; gid < 20; ++gid) {
    state.vacancies_after.push_back(gid * 37 + 11);
  }
  return state;
}

TEST(ScdStage, CiHalfwidthMatchesReplicateVarianceExactly) {
  const lat::BccGeometry geo(8, 8, 8, 2.855);
  ScdParams params = tiny_params();
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    ScdStage stage(geo, params, 8, /*seed=*/42);
    stage.set_window(0, kMidCoalescenceBudgetS);
    core::StageState state = scattered_vacancies();
    core::StageClock clock;
    stage.advance(comm, state, clock);

    ASSERT_EQ(state.sampled.replicate_estimates.size(), 8u);
    double mean = 0.0;
    for (const double x : state.sampled.replicate_estimates) mean += x;
    mean /= 8.0;
    double var = 0.0;
    for (const double x : state.sampled.replicate_estimates) {
      var += (x - mean) * (x - mean);
    }
    var /= 7.0;  // sample variance, matching RunningStats::variance()
    EXPECT_NEAR(state.sampled.est_clusters, mean, 1e-9);
    EXPECT_NEAR(state.sampled.ci_halfwidth, 1.96 * std::sqrt(var / 8.0), 1e-9);
    EXPECT_DOUBLE_EQ(clock.scd_time_s, kMidCoalescenceBudgetS);
  });
}

TEST(ScdStage, CiHalfwidthShrinksWithMoreReplicates) {
  const lat::BccGeometry geo(8, 8, 8, 2.855);
  ScdParams params = tiny_params();
  comm::World world(1);
  double ci_few = 0.0;
  double ci_many = 0.0;
  world.run([&](comm::Comm& comm) {
    {
      ScdStage stage(geo, params, 8, 42);
      stage.set_window(0, kMidCoalescenceBudgetS);
      core::StageState state = scattered_vacancies();
      core::StageClock clock;
      stage.advance(comm, state, clock);
      ci_few = state.sampled.ci_halfwidth;
    }
    {
      ScdStage stage(geo, params, 64, 42);
      stage.set_window(0, kMidCoalescenceBudgetS);
      core::StageState state = scattered_vacancies();
      core::StageClock clock;
      stage.advance(comm, state, clock);
      ci_many = state.sampled.ci_halfwidth;
    }
  });
  // sd stabilizes while 1/sqrt(R) drops ~2.8x; allow generous slack for the
  // sd estimate itself moving between replicate counts.
  ASSERT_GT(ci_few, 0.0);
  EXPECT_LT(ci_many, ci_few);
  EXPECT_LT(ci_many, 0.6 * ci_few);
}

TEST(ScdStage, DeterministicAcrossRuns) {
  const lat::BccGeometry geo(8, 8, 8, 2.855);
  ScdParams params = tiny_params();
  comm::World world(1);
  double est_a = 0.0, ci_a = 0.0, est_b = 0.0, ci_b = 0.0;
  world.run([&](comm::Comm& comm) {
    for (int pass = 0; pass < 2; ++pass) {
      ScdStage stage(geo, params, 8, 42);
      stage.set_window(3, kMidCoalescenceBudgetS);
      core::StageState state = scattered_vacancies();
      core::StageClock clock;
      stage.advance(comm, state, clock);
      (pass == 0 ? est_a : est_b) = state.sampled.est_clusters;
      (pass == 0 ? ci_a : ci_b) = state.sampled.ci_halfwidth;
    }
  });
  EXPECT_EQ(est_a, est_b);
  EXPECT_EQ(ci_a, ci_b);
}

}  // namespace
}  // namespace mmd::kmc
