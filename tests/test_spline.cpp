#include <gtest/gtest.h>

#include <cmath>

#include "potential/spline.h"
#include "potential/table_access.h"
#include "sunway/dma.h"
#include "sunway/local_store.h"

namespace mmd::pot {
namespace {

double cubic(double x) { return 2.0 * x * x * x - x * x + 3.0 * x - 5.0; }
double dcubic(double x) { return 6.0 * x * x - 2.0 * x + 3.0; }

TEST(CompactTable, SizesMatchPaper) {
  auto t = CompactTable::build([](double x) { return x; }, 0.0, 1.0, 5000);
  // 5001 samples * 8 B ~ 39 KB.
  EXPECT_EQ(t.bytes(), 5001u * sizeof(double));
  EXPECT_LT(t.bytes(), 40u * 1024u);
  auto trad = t.to_coefficients();
  // 5000 rows * 7 doubles ~ 273 KB.
  EXPECT_EQ(trad.bytes(), 5000u * 7u * sizeof(double));
  EXPECT_GT(trad.bytes(), 64u * 1024u);
  EXPECT_NEAR(static_cast<double>(trad.bytes()) / static_cast<double>(t.bytes()),
              7.0, 0.01);
}

TEST(CompactTable, ReproducesCubicNearlyExactly) {
  // The 5-point stencil derivative is exact for cubics (away from edges), so
  // interior interpolation reproduces a cubic to machine precision.
  auto t = CompactTable::build(cubic, 0.0, 2.0, 100);
  for (double x = 0.1; x < 1.9; x += 0.0137) {
    EXPECT_NEAR(t.value(x), cubic(x), 1e-10) << x;
    EXPECT_NEAR(t.derivative(x), dcubic(x), 1e-8) << x;
  }
}

TEST(CompactTable, InterpolatesExactAtNodes) {
  auto f = [](double x) { return std::sin(3.0 * x); };
  auto t = CompactTable::build(f, 0.0, 1.0, 50);
  for (int i = 0; i <= 50; ++i) {
    const double x = i / 50.0;
    EXPECT_NEAR(t.value(x), f(x), 1e-12);
  }
}

TEST(CompactTable, SmoothFunctionAccuracy) {
  auto f = [](double x) { return std::exp(-x) * std::cos(2.0 * x); };
  auto t = CompactTable::build(f, 0.0, 5.0, 5000);
  for (double x = 0.01; x < 5.0; x += 0.0317) {
    ASSERT_NEAR(t.value(x), f(x), 1e-9) << x;
  }
}

TEST(TraditionalEqualsCompact, ValuesAndDerivatives) {
  auto f = [](double x) { return std::exp(-0.8 * x) + 0.1 * x * x; };
  auto compact = CompactTable::build(f, 0.5, 6.0, 777);
  auto trad = compact.to_coefficients();
  for (double x = 0.5; x <= 6.0; x += 0.0071) {
    ASSERT_NEAR(compact.value(x), trad.value(x), 1e-13) << x;
    ASSERT_NEAR(compact.derivative(x), trad.derivative(x), 1e-11) << x;
  }
}

TEST(CompactTable, ClampsOutOfRange) {
  auto t = CompactTable::build([](double x) { return x; }, 0.0, 1.0, 10);
  // Below/above range: clamped segment evaluation, no crash.
  EXPECT_NO_THROW(t.value(-0.5));
  EXPECT_NO_THROW(t.value(1.5));
  EXPECT_EQ(t.segment_of(-1.0), 0);
  EXPECT_EQ(t.segment_of(2.0), 9);
}

TEST(CompactTable, RejectsBadDomain) {
  EXPECT_THROW(CompactTable::build([](double x) { return x; }, 1.0, 1.0, 10),
               std::invalid_argument);
  EXPECT_THROW(CompactTable::build([](double x) { return x; }, 0.0, 1.0, 0),
               std::invalid_argument);
}

TEST(CompactTable, WindowIndicesClampAtEdges) {
  std::int64_t idx[6];
  CompactTable::window_indices(0, 11, idx);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 0);
  EXPECT_EQ(idx[2], 0);
  EXPECT_EQ(idx[3], 1);
  CompactTable::window_indices(9, 11, idx);
  EXPECT_EQ(idx[5], 10);
}

TEST(Hermite, StencilMatchesPaperFormula) {
  // Paper Fig. 5: L[5,2] = (S[0] - S[4] + 8*(S[3] - S[1])) / 12 — the
  // centered 5-point derivative at node 2 of samples 0..4.
  const double s[5] = {1.0, 2.0, 4.0, 7.0, 11.0};
  const double expected = (s[0] - s[4] + 8.0 * (s[3] - s[1])) / 12.0;
  EXPECT_DOUBLE_EQ(hermite::node_derivative(s, 5, 2), expected);
}

TEST(Hermite, ValueEndpoints) {
  EXPECT_DOUBLE_EQ(hermite::value(3.0, 7.0, 1.0, -2.0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(hermite::value(3.0, 7.0, 1.0, -2.0, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(hermite::deriv_t(3.0, 7.0, 1.0, -2.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(hermite::deriv_t(3.0, 7.0, 1.0, -2.0, 1.0), -2.0);
}

TEST(CompactTable, DerivativeMatchesFiniteDifference) {
  auto f = [](double x) { return 1.0 / (x * x) - std::exp(-x); };
  auto t = CompactTable::build(f, 0.8, 5.0, 2000);
  const double eps = 1e-6;
  for (double x = 1.0; x < 4.8; x += 0.173) {
    const double fd = (t.value(x + eps) - t.value(x - eps)) / (2 * eps);
    ASSERT_NEAR(t.derivative(x), fd, 1e-5 * std::max(1.0, std::abs(fd))) << x;
  }
}

TEST(TableAccess, ResidentCompactUsesOneDma) {
  auto t = CompactTable::build([](double x) { return x * x; }, 0.0, 1.0, 1000);
  sw::LocalStore store(16 * 1024);
  sw::DmaEngine dma;
  CompactTableAccess access(t, store, dma, true);
  ASSERT_TRUE(access.resident());
  EXPECT_EQ(dma.stats().get_ops, 1u);  // the bulk stage-in
  double v, d;
  for (double x = 0.05; x < 1.0; x += 0.09) {
    access.eval(x, &v, &d);
    ASSERT_NEAR(v, t.value(x), 1e-14);
    ASSERT_NEAR(d, t.derivative(x), 1e-12);
  }
  EXPECT_EQ(dma.stats().get_ops, 1u);  // no per-lookup DMA
}

TEST(TableAccess, NonResidentCompactFetchesWindows) {
  auto t = CompactTable::build([](double x) { return std::sin(x); }, 0.0, 3.0, 5000);
  sw::LocalStore store(1024);  // too small: 40 KB table cannot stage
  sw::DmaEngine dma;
  CompactTableAccess access(t, store, dma, true);
  EXPECT_FALSE(access.resident());
  double v, d;
  access.eval(1.5, &v, &d);
  EXPECT_EQ(dma.stats().get_ops, 1u);
  EXPECT_LE(dma.stats().get_bytes, 6u * sizeof(double));
  EXPECT_NEAR(v, t.value(1.5), 1e-14);
  // Edge lookups also work (clamped windows).
  access.eval(0.0, &v, &d);
  access.eval(3.0, &v, &d);
  EXPECT_NEAR(v, t.value(3.0), 1e-14);
}

TEST(TableAccess, TraditionalAlwaysDmasPerLookup) {
  auto compact = CompactTable::build([](double x) { return x * x * x; }, 0.0, 1.0, 500);
  auto trad = compact.to_coefficients();
  sw::DmaEngine dma;
  CoefficientTableAccess access(trad, dma);
  double v, d;
  for (int i = 0; i < 10; ++i) {
    access.eval(0.05 + i * 0.09, &v, &d);
  }
  EXPECT_EQ(dma.stats().get_ops, 10u);
  EXPECT_EQ(dma.stats().get_bytes, 10u * 7u * sizeof(double));
  access.eval(0.5, &v, &d);
  EXPECT_NEAR(v, compact.value(0.5), 1e-13);
  EXPECT_NEAR(d, compact.derivative(0.5), 1e-11);
}

}  // namespace
}  // namespace mmd::pot
