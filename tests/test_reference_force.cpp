// Deep physics checks of the EAM force engine: analytic dimer limits,
// force-energy consistency (F = -dE/dx by finite differences), and
// translational invariance.

#include <gtest/gtest.h>

#include <cmath>

#include "lattice/ghost_exchange.h"
#include "md/engine.h"
#include "md/reference_force.h"

namespace mmd::md {
namespace {

constexpr double kA = 2.855;

struct Crystal {
  MdConfig cfg;
  MdSetup setup;
  pot::EamTableSet tables;

  Crystal()
      : cfg(make_cfg()),
        setup(cfg, 1),
        tables(pot::EamTableSet::build(
            pot::EamModel::iron(kA, cfg.cutoff), cfg.table_segments)) {}

  static MdConfig make_cfg() {
    MdConfig c;
    c.nx = c.ny = c.nz = 6;
    c.temperature = 0.0;
    c.table_segments = 2000;
    return c;
  }
};

/// Total potential energy after refreshing rho (serial, periodic).
double energy_of(Crystal& x, lat::LatticeNeighborList& lnl,
                 lat::GhostExchange& ghosts, comm::Comm& comm) {
  ReferenceForce force(x.tables);
  ghosts.exchange(comm);
  force.compute_rho(lnl);
  ghosts.exchange_rho(comm);
  return force.potential_energy(lnl);
}

TEST(ReferenceForce, CohesiveEnergyIsNegative) {
  Crystal x;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    lat::LatticeNeighborList lnl(x.setup.geo, x.setup.dd.local_box(0),
                                 x.cfg.cutoff + kNeighborSkin);
    lnl.fill_perfect(lat::Species::Fe);
    lat::GhostExchange ghosts(lnl, x.setup.dd, 0);
    const double e = energy_of(x, lnl, ghosts, comm);
    const double per_atom = e / static_cast<double>(x.setup.geo.num_sites());
    // Bound crystal: negative cohesive energy of a few eV per atom.
    EXPECT_LT(per_atom, -0.5);
    EXPECT_GT(per_atom, -20.0);
  });
}

TEST(ReferenceForce, ForceMatchesEnergyGradient) {
  // Displace one atom along x and compare -dE/dx (finite difference of the
  // total energy) with the computed force component.
  Crystal x;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    lat::LatticeNeighborList lnl(x.setup.geo, x.setup.dd.local_box(0),
                                 x.cfg.cutoff + kNeighborSkin);
    lat::GhostExchange ghosts(lnl, x.setup.dd, 0);
    ReferenceForce force(x.tables);
    const std::size_t idx = lnl.box().entry_index({3, 3, 3, 0});

    auto energy_at = [&](double dx) {
      lnl.fill_perfect(lat::Species::Fe);
      lnl.entry(idx).r += util::Vec3{0.2 + dx, 0.1, -0.15};
      return energy_of(x, lnl, ghosts, comm);
    };
    const double h = 1e-5;
    const double dEdx = (energy_at(h) - energy_at(-h)) / (2.0 * h);

    lnl.fill_perfect(lat::Species::Fe);
    lnl.entry(idx).r += util::Vec3{0.2, 0.1, -0.15};
    ghosts.exchange(comm);
    force.compute_rho(lnl);
    ghosts.exchange_rho(comm);
    force.compute_forces(lnl);
    EXPECT_NEAR(lnl.entry(idx).f.x, -dEdx, 5e-4 * std::max(1.0, std::abs(dEdx)));
  });
}

TEST(ReferenceForce, NewtonsThirdLawForPerturbedPair) {
  // Perturb two atoms; the force changes they induce on each other must be
  // equal and opposite (full-loop symmetry check via total-force sum).
  Crystal x;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    lat::LatticeNeighborList lnl(x.setup.geo, x.setup.dd.local_box(0),
                                 x.cfg.cutoff + kNeighborSkin);
    lnl.fill_perfect(lat::Species::Fe);
    lnl.entry(lnl.box().entry_index({2, 2, 2, 0})).r += util::Vec3{0.3, 0, 0};
    lnl.entry(lnl.box().entry_index({3, 3, 3, 1})).r += util::Vec3{0, -0.25, 0.1};
    lat::GhostExchange ghosts(lnl, x.setup.dd, 0);
    ReferenceForce force(x.tables);
    ghosts.exchange(comm);
    force.compute_rho(lnl);
    ghosts.exchange_rho(comm);
    force.compute_forces(lnl);
    util::Vec3 total{};
    for (std::size_t i : lnl.owned_indices()) {
      if (lnl.entry(i).is_atom()) total += lnl.entry(i).f;
    }
    EXPECT_NEAR(total.norm(), 0.0, 1e-8);
  });
}

TEST(ReferenceForce, TranslationalInvariance) {
  // Shifting every atom by the same vector (mod the box) leaves energy and
  // force magnitudes unchanged.
  Crystal x;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    lat::LatticeNeighborList lnl(x.setup.geo, x.setup.dd.local_box(0),
                                 x.cfg.cutoff + kNeighborSkin);
    lat::GhostExchange ghosts(lnl, x.setup.dd, 0);

    lnl.fill_perfect(lat::Species::Fe);
    const std::size_t probe = lnl.box().entry_index({3, 3, 3, 0});
    lnl.entry(probe).r += util::Vec3{0.3, 0.2, 0.1};
    const double e0 = energy_of(x, lnl, ghosts, comm);

    lnl.fill_perfect(lat::Species::Fe);
    const util::Vec3 shift{0.4, -0.7, 1.1};
    for (std::size_t i : lnl.owned_indices()) lnl.entry(i).r += shift;
    lnl.entry(probe).r += util::Vec3{0.3, 0.2, 0.1};
    const double e1 = energy_of(x, lnl, ghosts, comm);
    EXPECT_NEAR(e0, e1, 1e-7 * std::abs(e0));
  });
}

TEST(ReferenceForce, DimerForceIsRadialAndAntisymmetric) {
  // A perturbed 1NN pair: force difference lies along the pair axis.
  Crystal x;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    lat::LatticeNeighborList lnl(x.setup.geo, x.setup.dd.local_box(0),
                                 x.cfg.cutoff + kNeighborSkin);
    lnl.fill_perfect(lat::Species::Fe);
    const std::size_t a = lnl.box().entry_index({3, 3, 3, 0});
    const std::size_t b = lnl.box().entry_index({3, 3, 3, 1});
    // Compress the pair along its axis.
    const util::Vec3 axis = (lnl.entry(b).r - lnl.entry(a).r).normalized();
    lnl.entry(a).r += axis * 0.2;
    lnl.entry(b).r -= axis * 0.2;
    lat::GhostExchange ghosts(lnl, x.setup.dd, 0);
    ReferenceForce force(x.tables);
    ghosts.exchange(comm);
    force.compute_rho(lnl);
    ghosts.exchange_rho(comm);
    force.compute_forces(lnl);
    const util::Vec3 fa = lnl.entry(a).f;
    const util::Vec3 fb = lnl.entry(b).f;
    // By the symmetry of the compressed configuration, f_a = -f_b and both
    // point outward along the axis (repulsive at compression).
    EXPECT_NEAR((fa + fb).norm(), 0.0, 1e-8);
    EXPECT_LT(fa.dot(axis), 0.0);
    EXPECT_GT(fb.dot(axis), 0.0);
    // Radial: no component orthogonal to the axis.
    EXPECT_NEAR(fa.cross(axis).norm(), 0.0, 1e-8);
  });
}

TEST(ReferenceForce, PotentialEnergyDeterministicAcrossRuns) {
  Crystal x;
  double e1 = 0, e2 = 0;
  for (double* e : {&e1, &e2}) {
    comm::World world(1);
    world.run([&](comm::Comm& comm) {
      lat::LatticeNeighborList lnl(x.setup.geo, x.setup.dd.local_box(0),
                                   x.cfg.cutoff + kNeighborSkin);
      lnl.fill_perfect(lat::Species::Fe);
      lat::GhostExchange ghosts(lnl, x.setup.dd, 0);
      *e = energy_of(x, lnl, ghosts, comm);
    });
  }
  EXPECT_EQ(e1, e2);
}

}  // namespace
}  // namespace mmd::md
