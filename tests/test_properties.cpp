// Property-style sweeps across modules: invariants that must hold over
// parameter grids (box shapes, rank counts, resolutions, random walks),
// complementing the targeted unit tests.

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <set>

#include "comm/world.h"
#include "kmc/engine.h"
#include "lattice/ghost_exchange.h"
#include "md/engine.h"
#include "potential/spline.h"

namespace mmd {
namespace {

// ---------------------------------------------------------------------------
// Spline convergence: interpolation error must fall as resolution grows.
// ---------------------------------------------------------------------------

class SplineConvergence : public ::testing::TestWithParam<int> {};

TEST_P(SplineConvergence, ErrorShrinksWithResolution) {
  auto f = [](double x) { return std::exp(-x) * std::sin(3.0 * x); };
  const int n = GetParam();
  auto coarse = pot::CompactTable::build(f, 0.0, 4.0, n);
  auto fine = pot::CompactTable::build(f, 0.0, 4.0, n * 4);
  double err_coarse = 0.0, err_fine = 0.0;
  for (double x = 0.05; x < 3.95; x += 0.0137) {
    err_coarse = std::max(err_coarse, std::abs(coarse.value(x) - f(x)));
    err_fine = std::max(err_fine, std::abs(fine.value(x) - f(x)));
  }
  // Quartic-ish local error: 4x resolution should gain far more than 8x.
  EXPECT_LT(err_fine, err_coarse / 8.0);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, SplineConvergence,
                         ::testing::Values(50, 100, 200));

// ---------------------------------------------------------------------------
// Ghost exchange over non-cubic boxes and rank grids.
// ---------------------------------------------------------------------------

struct BoxCase {
  int nx, ny, nz, nranks;
};

class GhostExchangeShapes : public ::testing::TestWithParam<BoxCase> {};

TEST_P(GhostExchangeShapes, PerfectCrystalRoundTrip) {
  const auto [nx, ny, nz, nranks] = GetParam();
  lat::BccGeometry geo(nx, ny, nz, 2.855);
  lat::DomainDecomposition dd(geo, nranks, 2);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    lat::LatticeNeighborList lnl(geo, dd.local_box(comm.rank()), 5.0);
    lnl.fill_perfect(lat::Species::Fe);
    lnl.clear_ghosts();
    lat::GhostExchange ghosts(lnl, dd, comm.rank());
    ghosts.exchange(comm);
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      const auto& e = lnl.entry(i);
      ASSERT_TRUE(e.is_atom());
      ASSERT_EQ(e.id, lnl.site_rank(i));
      ASSERT_NEAR((e.r - lnl.ideal_position(i)).norm(), 0.0, 1e-12);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GhostExchangeShapes,
    ::testing::Values(BoxCase{6, 8, 10, 2}, BoxCase{12, 6, 6, 3},
                      BoxCase{8, 8, 12, 6}, BoxCase{10, 8, 6, 4},
                      BoxCase{6, 6, 6, 1}));

// ---------------------------------------------------------------------------
// Run-away fuzz: random detachment and drift must conserve atoms and leave
// the structure self-consistent after repeated rehome/exchange rounds.
// ---------------------------------------------------------------------------

class RunawayFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RunawayFuzz, AtomsConservedUnderRandomWalks) {
  const std::uint64_t seed = GetParam();
  const int nranks = 2;
  lat::BccGeometry geo(8, 8, 8, 2.855);
  lat::DomainDecomposition dd(geo, nranks, 2);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    lat::LatticeNeighborList lnl(geo, dd.local_box(comm.rank()), 5.0);
    lnl.fill_perfect(lat::Species::Fe);
    lat::GhostExchange ghosts(lnl, dd, comm.rank());
    ghosts.exchange(comm);
    util::Rng rng(seed + static_cast<std::uint64_t>(comm.rank()) * 977);
    for (int round = 0; round < 6; ++round) {
      std::vector<lat::RunawayAtom> emigrants;
      // Detach a few random owned atoms with random displacements.
      for (int k = 0; k < 5; ++k) {
        const auto& owned = lnl.owned_indices();
        const std::size_t idx = owned[rng.uniform_index(owned.size())];
        if (!lnl.entry(idx).is_atom()) continue;
        lnl.entry(idx).r += rng.unit_vector() * rng.uniform(1.3, 3.0);
        lnl.detach(idx, &emigrants);
      }
      // Drift every runaway a little.
      lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
        lnl.runaway(ri).r += rng.unit_vector() * rng.uniform(0.0, 1.0);
      });
      lnl.rehome_runaways(&emigrants);
      ghosts.exchange(comm, std::move(emigrants));
      const auto atoms = comm.allreduce_sum_u64(
          static_cast<std::uint64_t>(lnl.count_owned_atoms()));
      const auto vacs = comm.allreduce_sum_u64(
          static_cast<std::uint64_t>(lnl.count_owned_vacancies()));
      const auto runaways = comm.allreduce_sum_u64(
          static_cast<std::uint64_t>(lnl.count_owned_runaways()));
      ASSERT_EQ(atoms, static_cast<std::uint64_t>(geo.num_sites()));
      ASSERT_EQ(vacs, runaways);  // every vacancy has exactly one interstitial
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunawayFuzz, ::testing::Values(1, 2, 3, 5, 8));

// ---------------------------------------------------------------------------
// KMC event statistics: with uniform rates, the BKL selection must pick each
// of a vacancy's 8 events uniformly.
// ---------------------------------------------------------------------------

TEST(KmcStatistics, IsolatedVacancyHopsUniformly) {
  kmc::KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.table_segments = 300;
  cfg.dt_scale = 1.0;
  const kmc::KmcSetup setup(cfg, 1);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);
  // Count the direction of first hops over many seeds.
  std::map<std::int64_t, int> first_hop_counts;
  const int trials = 64;
  for (int t = 0; t < trials; ++t) {
    kmc::KmcConfig c = cfg;
    c.seed = 1000 + static_cast<std::uint64_t>(t);
    comm::World world(1);
    world.run([&](comm::Comm& comm) {
      kmc::KmcEngine engine(c, setup.geo, setup.dd, tables, comm.rank(),
                            kmc::GhostStrategy::OnDemandOneSided);
      const std::int64_t start = setup.geo.site_id({4, 4, 4, 0});
      std::vector<std::int64_t> sites{start};
      engine.initialize_sites(comm, sites);
      while (engine.stats().events == 0) engine.run_cycles(comm, 1);
      const auto vacs = engine.gather_vacancies(comm);
      ASSERT_EQ(vacs.size(), 1u);
      ++first_hop_counts[vacs[0]];
    });
  }
  // All observed destinations are 1NN sites of the start; with 64 trials and
  // 8 equivalent directions, expect every direction observed at least once
  // and no direction hogging more than half.
  EXPECT_GE(first_hop_counts.size(), 5u);
  for (const auto& [site, count] : first_hop_counts) {
    EXPECT_LT(count, trials / 2) << site;
  }
}

// ---------------------------------------------------------------------------
// MD energy conservation improves with smaller time steps.
// ---------------------------------------------------------------------------

TEST(MdProperties, EnergyDriftShrinksWithTimestep) {
  auto drift_for = [](double dt) {
    md::MdConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 5;
    cfg.temperature = 500.0;
    cfg.table_segments = 500;
    cfg.dt = dt;
    cfg.max_displacement = 0.0;  // fixed step for the comparison
    const md::MdSetup setup(cfg, 1);
    const auto tables = pot::EamTableSet::build(
        pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);
    double drift = 0.0;
    comm::World world(1);
    world.run([&](comm::Comm& comm) {
      md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
      engine.initialize(comm);
      const double e0 =
          engine.kinetic_energy(comm) + engine.potential_energy(comm);
      engine.run_for(comm, 0.04);
      const double e1 =
          engine.kinetic_energy(comm) + engine.potential_energy(comm);
      drift = std::abs(e1 - e0);
    });
    return drift;
  };
  const double coarse = drift_for(0.004);
  const double fine = drift_for(0.001);
  EXPECT_LT(fine, coarse);
}

// ---------------------------------------------------------------------------
// Communication stress: many interleaved tags and senders resolve correctly.
// ---------------------------------------------------------------------------

TEST(CommStress, InterleavedTagsAcrossRanks) {
  const int nranks = 6;
  comm::World world(nranks);
  world.run([&](comm::Comm& c) {
    // Everyone sends 20 messages to every other rank with mixed tags.
    for (int dst = 0; dst < nranks; ++dst) {
      if (dst == c.rank()) continue;
      for (int k = 0; k < 20; ++k) {
        const int payload = c.rank() * 1000 + k;
        c.send_value(dst, /*tag=*/k % 4, payload);
      }
    }
    // Receive per (src, tag) and check ordering within the pair (FIFO).
    for (int src = 0; src < nranks; ++src) {
      if (src == c.rank()) continue;
      std::map<int, int> next_k;
      for (int k = 0; k < 20; ++k) next_k[k % 4] = 0;  // counts per tag
      for (int tag = 0; tag < 4; ++tag) {
        const int expected = 5;  // 20 messages over 4 tags
        for (int i = 0; i < expected; ++i) {
          auto v = c.recv_vector<int>(src, tag);
          ASSERT_EQ(v.size(), 1u);
          const int k = v[0] - src * 1000;
          EXPECT_EQ(k % 4, tag);
          EXPECT_GE(k, next_k[tag]);  // FIFO within (src, tag)
          next_k[tag] = k;
        }
      }
    }
    c.barrier();
  });
}

TEST(CommStress, LargePayloadRoundTrip) {
  comm::World world(2);
  world.run([](comm::Comm& c) {
    const std::size_t n = 1 << 20;  // 8 MB of doubles
    if (c.rank() == 0) {
      std::vector<double> big(n);
      for (std::size_t i = 0; i < n; ++i) big[i] = static_cast<double>(i) * 0.5;
      c.send(1, 1, std::span<const double>(big));
    } else {
      auto big = c.recv_vector<double>(0, 1);
      ASSERT_EQ(big.size(), n);
      EXPECT_DOUBLE_EQ(big[n - 1], static_cast<double>(n - 1) * 0.5);
    }
  });
}

}  // namespace
}  // namespace mmd
