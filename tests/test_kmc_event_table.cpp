#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kmc/event_table.h"
#include "util/rng.h"

namespace mmd::kmc {
namespace {

TEST(EventTable, EmptyTableHasZeroTotal) {
  EventTable t;
  t.reset(16);
  EXPECT_EQ(t.total(), 0.0);
  EXPECT_EQ(t.active_slots(), 0u);
  EXPECT_EQ(t.sample(0.0), EventTable::npos);
}

TEST(EventTable, TotalMatchesTreeSummationOrder) {
  EventTable t;
  t.reset(5);
  t.set_rate(0, 3, 1.5);
  t.set_rate(2, 0, 2.25);
  t.set_rate(4, 7, 0.125);
  // Powers of two: the association order cannot change the value here.
  EXPECT_EQ(t.total(), 1.5 + 2.25 + 0.125);
  EXPECT_EQ(t.active_slots(), 3u);
}

TEST(EventTable, SampleLandsInTheRightSlotInterval) {
  EventTable t;
  t.reset(4);
  t.set_rate(0, 0, 1.0);  // slot 0: [0, 1)
  t.set_rate(1, 2, 2.0);  // slot 10: [1, 3)
  t.set_rate(3, 7, 4.0);  // slot 31: [3, 7)
  EXPECT_EQ(t.sample(0.0), 0u);
  EXPECT_EQ(t.sample(0.999), 0u);
  EXPECT_EQ(t.sample(1.0), 10u);
  EXPECT_EQ(t.sample(2.999), 10u);
  EXPECT_EQ(t.sample(3.0), 31u);
  EXPECT_EQ(t.sample(6.999), 31u);
  EXPECT_EQ(EventTable::site_of(10), 1u);
  EXPECT_EQ(EventTable::offset_of(10), 2);
  EXPECT_EQ(EventTable::site_of(31), 3u);
  EXPECT_EQ(EventTable::offset_of(31), 7);
}

TEST(EventTable, ClearSiteRemovesItsSlotsOnly) {
  EventTable t;
  t.reset(3);
  t.set_rate(0, 1, 1.0);
  t.set_rate(1, 0, 2.0);
  t.set_rate(1, 5, 3.0);
  t.clear_site(1);
  EXPECT_EQ(t.total(), 1.0);
  EXPECT_EQ(t.active_slots(), 1u);
  EXPECT_TRUE(t.site_touched(1));  // stale block stays findable until clear()
  t.clear();
  EXPECT_EQ(t.total(), 0.0);
  EXPECT_FALSE(t.site_touched(1));
  EXPECT_FALSE(t.site_touched(0));
}

/// The determinism contract: a table maintained through an arbitrary history
/// of overwrites, clears, and re-inserts is *bit-identical* — total() and
/// every sample() — to a fresh table holding the same final leaf values.
TEST(EventTable, IncrementalHistoryMatchesFreshRebuildBitwise) {
  constexpr std::size_t kSites = 100;
  util::Rng rng(0xe7e47ab1eull);
  EventTable incremental;
  incremental.reset(kSites);
  std::vector<double> leaves(kSites * EventTable::kSlotsPerSite, 0.0);
  for (int step = 0; step < 5000; ++step) {
    const auto site = rng.uniform_index(kSites);
    if (rng.uniform() < 0.2) {
      incremental.clear_site(site);
      for (int k = 0; k < EventTable::kSlotsPerSite; ++k) {
        leaves[site * EventTable::kSlotsPerSite + static_cast<std::size_t>(k)] = 0.0;
      }
    } else {
      const auto k = static_cast<int>(rng.uniform_index(EventTable::kSlotsPerSite));
      // Rates spanning many magnitudes, like exp(-barrier/kT) spreads.
      const double rate = std::exp(rng.uniform(-20.0, 20.0));
      incremental.set_rate(site, k, rate);
      leaves[site * EventTable::kSlotsPerSite + static_cast<std::size_t>(k)] = rate;
    }
  }
  EventTable fresh;
  fresh.reset(kSites);
  for (std::size_t s = 0; s < kSites; ++s) {
    for (int k = 0; k < EventTable::kSlotsPerSite; ++k) {
      const double r = leaves[s * EventTable::kSlotsPerSite + static_cast<std::size_t>(k)];
      if (r != 0.0) fresh.set_rate(s, k, r);
    }
  }
  ASSERT_EQ(incremental.total(), fresh.total());  // bitwise, not approximate
  ASSERT_EQ(incremental.active_slots(), fresh.active_slots());
  for (int i = 0; i < 2000; ++i) {
    const double pick = rng.uniform() * fresh.total();
    ASSERT_EQ(incremental.sample(pick), fresh.sample(pick)) << pick;
  }
}

TEST(EventTable, SampleNeverReturnsAnInactiveSlot) {
  EventTable t;
  t.reset(64);
  util::Rng rng(77);
  std::vector<std::size_t> active;
  for (int i = 0; i < 40; ++i) {
    const auto site = rng.uniform_index(64);
    const auto k = static_cast<int>(rng.uniform_index(EventTable::kSlotsPerSite));
    t.set_rate(site, k, rng.uniform(1e-8, 1e8));
  }
  for (int i = 0; i < 5000; ++i) {
    const std::size_t slot = t.sample(rng.uniform() * t.total());
    ASSERT_NE(slot, EventTable::npos);
    ASSERT_GT(t.slot_rate(slot), 0.0);
  }
}

TEST(EventTable, ResetReclaimsAndZeroes) {
  EventTable t;
  t.reset(8);
  t.set_rate(7, 7, 42.0);
  t.reset(2);
  EXPECT_EQ(t.total(), 0.0);
  EXPECT_EQ(t.capacity_slots(), 16u);
  t.set_rate(1, 3, 1.0);
  EXPECT_EQ(t.sample(0.5), 11u);
}

}  // namespace
}  // namespace mmd::kmc
