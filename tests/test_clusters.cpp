#include <gtest/gtest.h>

#include <vector>

#include "kmc/clusters.h"

namespace mmd::kmc {
namespace {

constexpr double kA = 2.855;

TEST(Clusters, EmptyInput) {
  lat::BccGeometry g(8, 8, 8, kA);
  const auto s = cluster_vacancies(g, {});
  EXPECT_EQ(s.num_vacancies, 0u);
  EXPECT_EQ(s.num_clusters, 0u);
}

TEST(Clusters, SingleVacancy) {
  lat::BccGeometry g(8, 8, 8, kA);
  const std::vector<std::int64_t> v{g.site_id({4, 4, 4, 0})};
  const auto s = cluster_vacancies(g, v);
  EXPECT_EQ(s.num_vacancies, 1u);
  EXPECT_EQ(s.num_clusters, 1u);
  EXPECT_EQ(s.max_size, 1u);
  EXPECT_DOUBLE_EQ(s.clustered_fraction, 0.0);
}

TEST(Clusters, TwoAdjacentVacanciesFormOneCluster) {
  lat::BccGeometry g(8, 8, 8, kA);
  // Corner site and body center of the same cell are 1NN.
  const std::vector<std::int64_t> v{g.site_id({4, 4, 4, 0}),
                                    g.site_id({4, 4, 4, 1})};
  const auto s = cluster_vacancies(g, v);
  EXPECT_EQ(s.num_clusters, 1u);
  EXPECT_EQ(s.max_size, 2u);
  EXPECT_DOUBLE_EQ(s.clustered_fraction, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_size, 2.0);
}

TEST(Clusters, SecondNeighborsAreSeparateClusters) {
  lat::BccGeometry g(8, 8, 8, kA);
  // Two corner sites one lattice constant apart: 2NN, not clustered.
  const std::vector<std::int64_t> v{g.site_id({4, 4, 4, 0}),
                                    g.site_id({5, 4, 4, 0})};
  const auto s = cluster_vacancies(g, v);
  EXPECT_EQ(s.num_clusters, 2u);
  EXPECT_EQ(s.max_size, 1u);
}

TEST(Clusters, ChainMergesTransitively) {
  lat::BccGeometry g(8, 8, 8, kA);
  // corner(4,4,4) - center(4,4,4) - corner(5,5,5): a 3-chain through 1NN.
  const std::vector<std::int64_t> v{g.site_id({4, 4, 4, 0}),
                                    g.site_id({4, 4, 4, 1}),
                                    g.site_id({5, 5, 5, 0})};
  const auto s = cluster_vacancies(g, v);
  EXPECT_EQ(s.num_clusters, 1u);
  EXPECT_EQ(s.max_size, 3u);
}

TEST(Clusters, PeriodicWrapCounts) {
  lat::BccGeometry g(8, 8, 8, kA);
  // center(7,7,7) and corner(0,0,0) are 1NN across the periodic boundary.
  const std::vector<std::int64_t> v{g.site_id({7, 7, 7, 1}),
                                    g.site_id({0, 0, 0, 0})};
  const auto s = cluster_vacancies(g, v);
  EXPECT_EQ(s.num_clusters, 1u);
}

TEST(Clusters, HistogramIsConsistent) {
  lat::BccGeometry g(10, 10, 10, kA);
  std::vector<std::int64_t> v;
  // One 2-cluster and three singletons.
  v.push_back(g.site_id({1, 1, 1, 0}));
  v.push_back(g.site_id({1, 1, 1, 1}));
  v.push_back(g.site_id({5, 5, 5, 0}));
  v.push_back(g.site_id({7, 2, 3, 0}));
  v.push_back(g.site_id({2, 7, 6, 1}));
  const auto s = cluster_vacancies(g, v);
  EXPECT_EQ(s.num_clusters, 4u);
  EXPECT_EQ(s.size_histogram.total(), 4u);
  EXPECT_EQ(s.size_histogram.weighted_total(), 5);
  EXPECT_EQ(s.size_histogram.bins().at(1), 3u);
  EXPECT_EQ(s.size_histogram.bins().at(2), 1u);
  EXPECT_NEAR(s.clustered_fraction, 2.0 / 5.0, 1e-12);
}

}  // namespace
}  // namespace mmd::kmc
