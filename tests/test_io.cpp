#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "io/xyz.h"
#include "md/engine.h"
#include "util/crc32.h"

namespace mmd::io {
namespace {

constexpr double kA = 2.855;

TEST(Xyz, SpeciesSymbols) {
  EXPECT_STREQ(species_symbol(-1), "X");
  EXPECT_STREQ(species_symbol(0), "Fe");
  EXPECT_STREQ(species_symbol(1), "Cu");
}

TEST(Xyz, FrameFormat) {
  lat::BccGeometry g(3, 3, 3, kA);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 3, 3, 3, 2}, 5.0);
  lnl.fill_perfect(lat::Species::Fe);
  std::ostringstream os;
  XyzWriter writer;
  writer.write_frame(os, lnl, 1.25);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "54");  // 2 * 27 atoms
  std::getline(is, line);
  EXPECT_NE(line.find("Lattice="), std::string::npos);
  EXPECT_NE(line.find("Time=1.25"), std::string::npos);
  std::getline(is, line);
  EXPECT_EQ(line.rfind("Fe ", 0), 0u);
}

TEST(Xyz, VacanciesAndRunawaysMarked) {
  lat::BccGeometry g(3, 3, 3, kA);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 3, 3, 3, 2}, 5.0);
  lnl.fill_perfect(lat::Species::Fe);
  lnl.detach(lnl.box().entry_index({1, 1, 1, 0}));
  std::ostringstream os;
  XyzWriter writer;
  writer.write_frame(os, lnl);
  const std::string s = os.str();
  EXPECT_NE(s.find("\nX "), std::string::npos);       // the vacancy
  EXPECT_NE(s.find(" 1\n"), std::string::npos);       // a run-away flag
  // Count line says 54 + 1 pseudo-atom: 54 atoms(incl runaway) + 1 vacancy.
  EXPECT_EQ(s.substr(0, s.find('\n')), "55");
}

TEST(Xyz, VacancyExclusionOption) {
  lat::BccGeometry g(3, 3, 3, kA);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 3, 3, 3, 2}, 5.0);
  lnl.fill_perfect(lat::Species::Fe);
  lnl.detach(lnl.box().entry_index({1, 1, 1, 0}));
  XyzWriter::Options opts;
  opts.include_vacancies = false;
  std::ostringstream os;
  XyzWriter(opts).write_frame(os, lnl);
  EXPECT_EQ(os.str().substr(0, os.str().find('\n')), "54");
}

TEST(Xyz, GlobalGatherWritesAllRanks) {
  lat::BccGeometry g(8, 8, 8, kA);
  lat::DomainDecomposition dd(g, 4, 2);
  std::ostringstream os;
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    lat::LatticeNeighborList lnl(g, dd.local_box(comm.rank()), 5.0);
    lnl.fill_perfect(lat::Species::Fe);
    XyzWriter writer;
    writer.write_frame_global(os, comm, lnl, 0.0);
  });
  EXPECT_EQ(os.str().substr(0, os.str().find('\n')), "1024");
}

TEST(Xyz, KmcSites) {
  kmc::KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  cfg.table_segments = 200;
  lat::BccGeometry geo(6, 6, 6, kA);
  lat::DomainDecomposition dd(geo, 1, 3);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), 200);
  kmc::KmcModel model(cfg, geo, dd, tables, 0);
  model.set_state_global(0, kmc::SiteState::Vacancy);
  std::ostringstream os;
  XyzWriter().write_sites(os, model);
  EXPECT_EQ(os.str().substr(0, os.str().find('\n')), "432");
  EXPECT_NE(os.str().find("\nX "), std::string::npos);
}

TEST(Checkpoint, MdRoundTrip) {
  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  cfg.temperature = 300.0;
  cfg.table_segments = 400;
  const md::MdSetup setup(cfg, 1);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);
  std::string blob;
  std::vector<util::Vec3> expected_r, expected_v;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 3);
    // Make a defect so the run-away pool round-trips too.
    auto& lnl = engine.lattice();
    const std::size_t idx = lnl.box().entry_index({3, 3, 3, 0});
    lnl.entry(idx).r += util::Vec3{0.4, 0.3, 0.1};
    lnl.detach(idx);
    std::ostringstream os;
    Checkpoint::save_md(os, lnl, engine.simulated_time());
    blob = os.str();
    for (std::size_t i : lnl.owned_indices()) {
      expected_r.push_back(lnl.entry(i).r);
      expected_v.push_back(lnl.entry(i).v);
    }
  });
  // Restore into a fresh lattice.
  lat::LatticeNeighborList restored(setup.geo, setup.dd.local_box(0),
                                    cfg.cutoff + md::kNeighborSkin);
  std::istringstream is(blob);
  const double t = Checkpoint::load_md(is, restored);
  EXPECT_GT(t, 0.0);
  std::size_t k = 0;
  for (std::size_t i : restored.owned_indices()) {
    EXPECT_EQ(restored.entry(i).r, expected_r[k]);
    EXPECT_EQ(restored.entry(i).v, expected_v[k]);
    ++k;
  }
  EXPECT_EQ(restored.count_owned_vacancies(), 1u);
  EXPECT_EQ(restored.count_owned_runaways(), 1u);
}

TEST(Checkpoint, MdRejectsWrongGeometry) {
  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  cfg.table_segments = 300;
  const md::MdSetup setup(cfg, 1);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);
  std::string blob;
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
    engine.initialize(comm);
    std::ostringstream os;
    Checkpoint::save_md(os, engine.lattice(), 0.0);
    blob = os.str();
  });
  lat::BccGeometry other(8, 8, 8, cfg.lattice_constant);
  lat::LatticeNeighborList wrong(other, lat::LocalBox{0, 0, 0, 8, 8, 8, 2}, 5.0);
  std::istringstream is(blob);
  EXPECT_THROW(Checkpoint::load_md(is, wrong), std::runtime_error);
}

TEST(Checkpoint, RejectsCorruptHeader) {
  std::istringstream is(std::string("garbage data that is not a checkpoint"));
  lat::BccGeometry g(4, 4, 4, kA);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 4, 4, 4, 2}, 5.0);
  EXPECT_THROW(Checkpoint::load_md(is, lnl), std::runtime_error);
}

TEST(Checkpoint, KmcRoundTrip) {
  kmc::KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.table_segments = 200;
  lat::BccGeometry geo(8, 8, 8, cfg.lattice_constant);
  lat::DomainDecomposition dd(geo, 1, 3);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), 200);
  kmc::KmcModel model(cfg, geo, dd, tables, 0);
  model.set_state_global(17, kmc::SiteState::Vacancy);
  model.set_state_global(333, kmc::SiteState::Cu);
  std::ostringstream os;
  Checkpoint::save_kmc(os, model, 1.5e-4);
  kmc::KmcModel restored(cfg, geo, dd, tables, 0);
  std::istringstream is(os.str());
  EXPECT_DOUBLE_EQ(Checkpoint::load_kmc(is, restored), 1.5e-4);
  EXPECT_EQ(restored.count_owned_vacancies(), 1u);
  std::vector<std::size_t> images;
  restored.images_of_global(333, images);
  bool found_cu = false;
  for (std::size_t i : images) {
    if (restored.is_owned(i)) found_cu = restored.state(i) == kmc::SiteState::Cu;
  }
  EXPECT_TRUE(found_cu);
}

namespace {

/// A small lattice with a vacancy and a two-atom run-away chain, serialized.
std::string md_blob(const lat::BccGeometry& g, const lat::LocalBox& box) {
  lat::LatticeNeighborList lnl(g, box, 5.0);
  lnl.fill_perfect(lat::Species::Fe);
  const std::size_t host = lnl.box().entry_index({1, 1, 1, 0});
  lnl.entry(host).r += util::Vec3{0.4, 0.2, 0.1};
  lnl.detach(host);
  lat::RunawayAtom extra;
  extra.r = {1.0, 2.0, 3.0};
  extra.v = {0.1, 0.2, 0.3};
  extra.id = 7;
  lnl.add_runaway(extra, lnl.box().entry_index({2, 2, 2, 1}));
  std::ostringstream os;
  Checkpoint::save_md(os, lnl, 0.5);
  return os.str();
}

std::string md_blob_3cube() {
  lat::BccGeometry g(3, 3, 3, kA);
  return md_blob(g, lat::LocalBox{0, 0, 0, 3, 3, 3, 2});
}

void patch_u32(std::string& blob, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    blob[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFFu);
  }
}

// v2 layout: file header 8 B; section kind @8, length @12, crc @20,
// payload @24. MD payload: 9*i32 geometry, f64 time, u64 count, then
// records of 90 B + u32 chain_len (+ chain).
constexpr std::size_t kPayloadOff = 24;
constexpr std::size_t kSectionCrcOff = 20;
constexpr std::size_t kFirstChainLenOff = kPayloadOff + 36 + 8 + 8 + 90;

}  // namespace

TEST(Checkpoint, BlobsAreByteDeterministic) {
  // Explicit field serialization: no struct padding reaches the stream, so
  // two saves of the same state are identical (and CRCs are stable).
  EXPECT_EQ(md_blob_3cube(), md_blob_3cube());
}

TEST(Checkpoint, TruncationRejectedAtAnyLength) {
  const std::string blob = md_blob_3cube();
  lat::BccGeometry g(3, 3, 3, kA);
  for (std::size_t len = 0; len < blob.size();
       len += 1 + blob.size() / 97) {
    lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 3, 3, 3, 2}, 5.0);
    std::istringstream is(blob.substr(0, len));
    EXPECT_THROW(Checkpoint::load_md(is, lnl), std::runtime_error)
        << "truncation at byte " << len << " was not rejected";
  }
}

TEST(Checkpoint, BitFlipAnywhereInPayloadRejected) {
  const std::string blob = md_blob_3cube();
  lat::BccGeometry g(3, 3, 3, kA);
  for (std::size_t off = kPayloadOff; off < blob.size();
       off += 1 + blob.size() / 61) {
    std::string bad = blob;
    bad[off] = static_cast<char>(bad[off] ^ 0x10);
    lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 3, 3, 3, 2}, 5.0);
    std::istringstream is(bad);
    EXPECT_THROW(Checkpoint::load_md(is, lnl), std::runtime_error)
        << "bit flip at byte " << off << " was not rejected";
  }
}

TEST(Checkpoint, OversizedChainLenRejectedBeforeAllocation) {
  // A corrupt chain_len must be bounded against the bytes actually present,
  // not fed to a vector constructor. Forge a blob whose CRC is valid but
  // whose first record claims a multi-GB chain.
  std::string blob = md_blob_3cube();
  patch_u32(blob, kFirstChainLenOff, 0x3FFFFFFFu);
  patch_u32(blob, kSectionCrcOff, util::crc32(blob.substr(kPayloadOff)));
  lat::BccGeometry g(3, 3, 3, kA);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 3, 3, 3, 2}, 5.0);
  std::istringstream is(blob);
  try {
    Checkpoint::load_md(is, lnl);
    FAIL() << "oversized chain_len was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("chain length"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, OversizedSectionLengthRejected) {
  std::string blob = md_blob_3cube();
  // Section length field (u64 little-endian at offset 12): claim 1 TiB.
  patch_u32(blob, 12, 0x00000000u);
  patch_u32(blob, 16, 0x00000100u);
  lat::BccGeometry g(3, 3, 3, kA);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 3, 3, 3, 2}, 5.0);
  std::istringstream is(blob);
  EXPECT_THROW(Checkpoint::load_md(is, lnl), std::runtime_error);
}

TEST(Checkpoint, Version1RejectedWithMigrationMessage) {
  std::string blob = md_blob_3cube();
  patch_u32(blob, 4, 1u);  // version field
  lat::BccGeometry g(3, 3, 3, kA);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 3, 3, 3, 2}, 5.0);
  std::istringstream is(blob);
  try {
    Checkpoint::load_md(is, lnl);
    FAIL() << "version 1 blob was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version 1"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, MultiRankRoundTripWithRunawayChains) {
  // Per-rank files across a 4-rank decomposition, every rank carrying a
  // vacancy and a multi-atom run-away chain; chain order must survive.
  lat::BccGeometry g(8, 8, 8, kA);
  lat::DomainDecomposition dd(g, 4, 2);
  for (int rank = 0; rank < 4; ++rank) {
    lat::LatticeNeighborList lnl(g, dd.local_box(rank), 5.0);
    lnl.fill_perfect(lat::Species::Fe);
    const lat::LocalBox& b = lnl.box();
    // LocalCoord is rank-local: owned cells span [0, l*) on every rank.
    const std::size_t detached = b.entry_index({1, 1, 1, 0});
    lnl.entry(detached).r += util::Vec3{0.5, 0.1, 0.2};
    lnl.detach(detached);
    const std::size_t host = b.entry_index({2, 1, 1, 1});
    for (int k = 0; k < 3; ++k) {
      lat::RunawayAtom a;
      a.r = {1.0 + k, 2.0, 3.0 + rank};
      a.v = {0.1 * k, 0.0, 0.0};
      a.id = 100 * rank + k;
      lnl.add_runaway(a, host);
    }
    std::ostringstream os;
    Checkpoint::save_md(os, lnl, 1.0 + rank);

    // Capture the expected chain (head order) and entry state.
    std::vector<std::int64_t> expected_chain;
    for (std::int32_t ri = lnl.entry(host).runaway_head;
         ri != lat::AtomEntry::kNoRunaway; ri = lnl.runaway(ri).next) {
      expected_chain.push_back(lnl.runaway(ri).id);
    }
    ASSERT_EQ(expected_chain.size(), 3u);

    lat::LatticeNeighborList restored(g, dd.local_box(rank), 5.0);
    std::istringstream is(os.str());
    EXPECT_DOUBLE_EQ(Checkpoint::load_md(is, restored), 1.0 + rank);
    EXPECT_EQ(restored.count_owned_vacancies(), lnl.count_owned_vacancies());
    EXPECT_EQ(restored.count_owned_runaways(), lnl.count_owned_runaways());
    std::vector<std::int64_t> got_chain;
    for (std::int32_t ri = restored.entry(host).runaway_head;
         ri != lat::AtomEntry::kNoRunaway; ri = restored.runaway(ri).next) {
      got_chain.push_back(restored.runaway(ri).id);
    }
    EXPECT_EQ(got_chain, expected_chain) << "rank " << rank;
    for (std::size_t i : restored.owned_indices()) {
      EXPECT_EQ(restored.entry(i).id, lnl.entry(i).id);
      EXPECT_EQ(restored.entry(i).r, lnl.entry(i).r);
      EXPECT_EQ(restored.entry(i).v, lnl.entry(i).v);
    }
  }
}

TEST(Checkpoint, KindMismatchRejected) {
  kmc::KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  lat::BccGeometry geo(6, 6, 6, cfg.lattice_constant);
  lat::DomainDecomposition dd(geo, 1, 3);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), 200);
  kmc::KmcModel model(cfg, geo, dd, tables, 0);
  std::ostringstream os;
  Checkpoint::save_kmc(os, model, 0.0);
  lat::LatticeNeighborList lnl(geo, dd.local_box(0), 5.0);
  std::istringstream is(os.str());
  EXPECT_THROW(Checkpoint::load_md(is, lnl), std::runtime_error);
}

}  // namespace
}  // namespace mmd::io
