#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sunway/core_group.h"
#include "sunway/dma.h"
#include "sunway/local_store.h"
#include "sunway/slave_pool.h"

namespace mmd::sw {
namespace {

TEST(LocalStore, CapacityMatchesSunway) {
  LocalStore s;
  EXPECT_EQ(s.capacity(), 64u * 1024u);
  EXPECT_EQ(s.used(), 0u);
}

TEST(LocalStore, BumpAllocation) {
  LocalStore s(1024);
  void* a = s.allocate(100);
  ASSERT_NE(a, nullptr);
  void* b = s.allocate(100);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_GE(s.used(), 200u);
}

TEST(LocalStore, FailsBeyondCapacity) {
  LocalStore s(256);
  EXPECT_NE(s.allocate(200), nullptr);
  EXPECT_EQ(s.allocate(100), nullptr);  // does not fit
  EXPECT_TRUE(s.fits(40));              // 200 aligns to 208; 208+40 <= 256
  EXPECT_FALSE(s.fits(100));
}

TEST(LocalStore, TraditionalTableDoesNotFitCompactDoes) {
  // The paper's core capacity argument: 5000x7 doubles = 273 KB does not fit
  // a 64 KB local store; 5001 samples = 39 KB does.
  LocalStore s;
  EXPECT_FALSE(s.fits(5000 * 7 * sizeof(double)));
  EXPECT_TRUE(s.fits(5001 * sizeof(double)));
}

TEST(LocalStore, ResetReclaims) {
  LocalStore s(512);
  ASSERT_NE(s.allocate(400), nullptr);
  EXPECT_EQ(s.allocate(400), nullptr);
  s.reset();
  EXPECT_NE(s.allocate(400), nullptr);
  EXPECT_GE(s.high_water_mark(), 400u);
}

TEST(LocalStore, TypedAllocationAlignment) {
  LocalStore s(1024);
  ASSERT_NE(s.allocate(1), nullptr);
  double* d = s.allocate_array<double>(4);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
}

TEST(LocalStore, OverAlignedAllocationFromOddOffset) {
  // Regression: allocate() used to align the bump-pointer OFFSET instead of
  // the returned pointer, so over-aligned requests (align > the base
  // address's own alignment, typically 16) came back misaligned whenever the
  // vector's base was not itself 32/64-byte aligned. Several stores of
  // varied capacity shake the heap so at least some bases are not 64-aligned.
  for (std::size_t cap : {4096u, 4097u, 5000u, 8192u, 16384u}) {
    LocalStore s(cap);
    for (std::size_t align : {32u, 64u}) {
      ASSERT_NE(s.allocate(1, 1), nullptr);  // odd starting offset
      void* p = s.allocate(256, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "capacity " << cap << " align " << align;
    }
    double* arr = s.allocate_array<double>(16, 64);
    ASSERT_NE(arr, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arr) % 64, 0u);
  }
}

TEST(LocalStore, FitsAgreesWithAllocate) {
  // fits() must share allocate()'s rounding math exactly: probing then
  // allocating the same (bytes, align) request must agree, for every
  // alignment and for sizes straddling the capacity edge.
  LocalStore s(2048);
  ASSERT_NE(s.allocate(3, 1), nullptr);  // start misaligned
  for (std::size_t align : {1u, 8u, 16u, 32u, 64u}) {
    for (std::size_t bytes : {1u, 7u, 64u, 500u, 1000u, 2048u, 4096u}) {
      const bool predicted = s.fits(bytes, align);
      void* p = s.allocate(bytes, align);
      EXPECT_EQ(predicted, p != nullptr)
          << "bytes " << bytes << " align " << align << " used " << s.used();
      if (p != nullptr) {
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
      }
    }
  }
}

TEST(Dma, CountsOpsAndBytes) {
  DmaEngine dma;
  std::vector<double> main_mem(64, 1.5);
  double local[64];
  dma.get(local, main_mem.data(), 64 * sizeof(double));
  EXPECT_EQ(dma.stats().get_ops, 1u);
  EXPECT_EQ(dma.stats().get_bytes, 64u * sizeof(double));
  EXPECT_DOUBLE_EQ(local[63], 1.5);
  local[0] = 9.0;
  dma.put(main_mem.data(), local, sizeof(double));
  EXPECT_EQ(dma.stats().put_ops, 1u);
  EXPECT_DOUBLE_EQ(main_mem[0], 9.0);
}

TEST(Dma, BatchedGetIsOneOp) {
  DmaEngine dma;
  std::vector<int> src(100);
  std::iota(src.begin(), src.end(), 0);
  int dst[20];
  DmaEngine::Run runs[2] = {
      {dst, src.data(), 10 * sizeof(int)},
      {dst + 10, src.data() + 50, 10 * sizeof(int)},
  };
  dma.get_batched(runs, 2);
  EXPECT_EQ(dma.stats().get_ops, 1u);
  EXPECT_EQ(dma.stats().get_bytes, 20u * sizeof(int));
  EXPECT_EQ(dst[0], 0);
  EXPECT_EQ(dst[10], 50);
}

TEST(Dma, ModeledTimeFollowsCostModel) {
  DmaCostModel cost{1e-6, 1e9};
  DmaEngine dma(cost);
  std::vector<char> buf(1000), local(1000);
  dma.get(local.data(), buf.data(), 1000);
  EXPECT_NEAR(dma.modeled_time(), 1e-6 + 1000.0 / 1e9, 1e-15);
  dma.reset_stats();
  EXPECT_EQ(dma.stats().total_ops(), 0u);
  EXPECT_DOUBLE_EQ(dma.modeled_time(), 0.0);
}

TEST(Dma, AsyncCompletesEagerly) {
  DmaEngine dma;
  double a = 1.0, b = 0.0;
  auto h = dma.get_async(&b, &a, sizeof(double));
  EXPECT_DOUBLE_EQ(b, 1.0);
  h.wait();
  EXPECT_TRUE(h.done());
}

TEST(SlavePool, RunsEveryCore) {
  SlaveCorePool pool(16, 4096);
  std::vector<std::atomic<int>> hits(16);
  pool.run([&](SlaveCtx& ctx) { hits[ctx.core_id].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

class SlavePoolParallelFor : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SlavePoolParallelFor, CoversAllTasksExactlyOnce) {
  const std::size_t n = GetParam();
  SlaveCorePool pool(8, 4096);
  std::vector<std::atomic<int>> hits(n == 0 ? 1 : n);
  pool.parallel_for(n, [&](SlaveCtx&, std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SlavePoolParallelFor,
                         ::testing::Values(0, 1, 7, 8, 9, 64, 1000));

TEST(SlavePool, PerCoreStoresAreIndependent) {
  SlaveCorePool pool(4, 1024);
  pool.run([&](SlaveCtx& ctx) {
    // Each core can allocate its full store: no sharing.
    EXPECT_NE(ctx.local_store->allocate(1000), nullptr);
    EXPECT_EQ(ctx.local_store->allocate(1000), nullptr);
  });
  // run() resets stores between invocations.
  pool.run([&](SlaveCtx& ctx) {
    EXPECT_NE(ctx.local_store->allocate(1000), nullptr);
  });
}

TEST(SlavePool, AggregatesDmaStats) {
  SlaveCorePool pool(4, 4096);
  std::vector<double> main_mem(8, 0.0);
  pool.run([&](SlaveCtx& ctx) {
    double x = 1.0;
    ctx.dma->put(&main_mem[ctx.core_id], &x, sizeof(double));
  });
  EXPECT_EQ(pool.aggregate_dma_stats().put_ops, 4u);
  pool.reset_stats();
  EXPECT_EQ(pool.aggregate_dma_stats().put_ops, 0u);
}

class SlavePoolParallelForChunks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SlavePoolParallelForChunks, CoversAllTasksExactlyOnceInContiguousChunks) {
  const std::size_t n = GetParam();
  SlaveCorePool pool(8, 4096);
  std::vector<std::atomic<int>> hits(n == 0 ? 1 : n);
  std::atomic<int> invocations{0};
  pool.parallel_for_chunks(n, [&](SlaveCtx&, std::size_t begin, std::size_t end) {
    invocations.fetch_add(1);
    EXPECT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // At most one dispatch per core: the per-item std::function cost is gone.
  EXPECT_LE(invocations.load(), 8);
  if (n > 0) {
    EXPECT_GE(invocations.load(), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SlavePoolParallelForChunks,
                         ::testing::Values(0, 1, 7, 8, 9, 64, 1000));

TEST(SlavePool, ManySuccessiveRunsOnPersistentWorkers) {
  // The workers are spawned once; 500 fork/join cycles must all cover every
  // core and keep per-core DMA stats accumulating.
  SlaveCorePool pool(16, 4096);
  std::vector<std::atomic<int>> hits(16);
  std::vector<double> main_mem(16, 0.0);
  const int kRuns = 500;
  for (int r = 0; r < kRuns; ++r) {
    pool.run([&](SlaveCtx& ctx) {
      hits[ctx.core_id].fetch_add(1);
      double x = 1.0;
      ctx.dma->put(&main_mem[ctx.core_id], &x, sizeof(double));
    });
  }
  for (auto& h : hits) EXPECT_EQ(h.load(), kRuns);
  // Stats fold per core across invocations.
  EXPECT_EQ(pool.aggregate_dma_stats().put_ops,
            static_cast<std::uint64_t>(kRuns) * 16u);
  for (std::size_t c = 0; c < pool.size(); ++c) {
    EXPECT_EQ(pool.core(c).dma->stats().put_ops,
              static_cast<std::uint64_t>(kRuns))
        << "core " << c;
  }
}

TEST(SlavePool, KernelExceptionsPropagateAndPoolStaysUsable) {
  SlaveCorePool pool(8, 4096);
  EXPECT_THROW(
      pool.run([&](SlaveCtx& ctx) {
        if (ctx.core_id == 5) throw std::runtime_error("kernel fault");
      }),
      std::runtime_error);
  // Even when every core throws, exactly one exception surfaces.
  EXPECT_THROW(pool.run([&](SlaveCtx&) { throw std::runtime_error("all"); }),
               std::runtime_error);
  // The pool remains fully operational after a failed epoch.
  std::vector<std::atomic<int>> hits(8);
  pool.run([&](SlaveCtx& ctx) { hits[ctx.core_id].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SlavePool, ConstCoreAccessorReadsStats) {
  SlaveCorePool pool(2, 4096);
  std::vector<double> main_mem(2, 0.0);
  pool.run([&](SlaveCtx& ctx) {
    double x = 1.0;
    ctx.dma->put(&main_mem[ctx.core_id], &x, sizeof(double));
  });
  const SlaveCorePool& cpool = pool;
  EXPECT_EQ(cpool.core(0).dma->stats().put_ops, 1u);
  EXPECT_EQ(cpool.core(1).dma->stats().put_ops, 1u);
  EXPECT_GE(cpool.os_threads(), 1u);
  EXPECT_LE(cpool.os_threads(), 2u);
}

TEST(SlavePool, ConcurrentSubmittersInterleaveSafely) {
  // Campaign service mode: several jobs share one pool and submit epochs
  // concurrently. Epochs serialize on the submit lock, every epoch covers
  // every core exactly once, and per-submitter sums stay exact.
  constexpr int kSubmitters = 4;
  constexpr int kEpochsEach = 50;
  constexpr std::size_t kCores = 8;
  SlaveCorePool pool(kCores, 4096);
  pool.reset_activity();
  std::vector<std::atomic<std::uint64_t>> per_submitter(kSubmitters);
  std::vector<std::thread> jobs;
  for (int s = 0; s < kSubmitters; ++s) {
    jobs.emplace_back([&, s] {
      for (int e = 0; e < kEpochsEach; ++e) {
        std::atomic<std::uint64_t> covered{0};
        pool.run([&](SlaveCtx& ctx) {
          covered.fetch_add(ctx.core_id + 1);  // sum 1..kCores
        });
        EXPECT_EQ(covered.load(), kCores * (kCores + 1) / 2);
        per_submitter[s].fetch_add(covered.load());
      }
    });
  }
  for (auto& t : jobs) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(per_submitter[s].load(),
              static_cast<std::uint64_t>(kEpochsEach) * kCores * (kCores + 1) / 2);
  }
  const auto act = pool.activity();
  EXPECT_EQ(act.epochs, static_cast<std::uint64_t>(kSubmitters) * kEpochsEach);
  EXPECT_GT(act.busy_seconds, 0.0);
  // contended_epochs is timing-dependent; it only ever counts real waits.
  EXPECT_LE(act.contended_epochs, act.epochs);
}

TEST(SlavePool, ActivityCountsEpochsAndResets) {
  SlaveCorePool pool(4, 1024);
  pool.reset_activity();
  for (int i = 0; i < 3; ++i) pool.run([](SlaveCtx&) {});
  auto act = pool.activity();
  EXPECT_EQ(act.epochs, 3u);
  EXPECT_EQ(act.contended_epochs, 0u);  // single submitter never waits
  EXPECT_GE(act.busy_seconds, 0.0);
  pool.reset_activity();
  act = pool.activity();
  EXPECT_EQ(act.epochs, 0u);
  EXPECT_DOUBLE_EQ(act.busy_seconds, 0.0);
}

TEST(CoreGroup, DefaultShapeIsSunway) {
  CoreGroup cg;
  EXPECT_EQ(cg.slaves().size(), 64u);
  EXPECT_EQ(cg.config().local_store_bytes, 64u * 1024u);
}

}  // namespace
}  // namespace mmd::sw
