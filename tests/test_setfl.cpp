#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "potential/setfl.h"

namespace mmd::pot {
namespace {

TEST(Setfl, RoundTripIronModel) {
  const EamModel fe = EamModel::iron();
  const SetflData d = setfl_from_model(fe, {"Fe"});
  std::ostringstream os;
  write_setfl(os, d);
  std::istringstream is(os.str());
  const SetflData back = parse_setfl(is);
  EXPECT_EQ(back.elements, d.elements);
  EXPECT_EQ(back.nrho, d.nrho);
  EXPECT_EQ(back.nr, d.nr);
  EXPECT_DOUBLE_EQ(back.cutoff, d.cutoff);
  ASSERT_EQ(back.embed.size(), 1u);
  ASSERT_EQ(back.density.size(), 1u);
  ASSERT_EQ(back.rphi.size(), 1u);
  for (std::size_t i = 0; i < d.embed[0].size(); i += 97) {
    EXPECT_DOUBLE_EQ(back.embed[0][i], d.embed[0][i]);
  }
  EXPECT_EQ(back.meta[0].atomic_number, 26);
  EXPECT_EQ(back.meta[0].structure, "bcc");
}

TEST(Setfl, TablesMatchSourceModel) {
  const EamModel fe = EamModel::iron();
  const SetflData d = setfl_from_model(fe, {"Fe"}, 4000, 4000);
  const EamTableSet from_file = tables_from_setfl(d, 2000);
  const EamTableSet direct = EamTableSet::build(fe, 2000);
  // Loaded tables agree with the direct build (linear resampling of a dense
  // file grid; tolerances reflect the double interpolation).
  for (double r = 1.2; r < 4.9; r += 0.083) {
    ASSERT_NEAR(from_file.phi(0, 0).value(r), direct.phi(0, 0).value(r), 2e-3) << r;
    ASSERT_NEAR(from_file.f(0, 0).value(r), direct.f(0, 0).value(r), 1e-3) << r;
  }
  const double rho_e = fe.species(0).rho_e;
  for (double rho = 0.2 * rho_e; rho < 1.8 * rho_e; rho += 0.2 * rho_e) {
    ASSERT_NEAR(from_file.embed_of(0).value(rho), direct.embed_of(0).value(rho),
                2e-3) << rho;
  }
}

TEST(Setfl, AlloyPairOrdering) {
  const EamModel alloy = EamModel::iron_copper();
  const SetflData d = setfl_from_model(alloy, {"Fe", "Cu"}, 1500, 1000);
  ASSERT_EQ(d.rphi.size(), 3u);  // (Fe,Fe), (Cu,Fe), (Cu,Cu)
  const EamTableSet t = tables_from_setfl(d, 1000);
  EXPECT_EQ(t.num_species, 2);
  // Cross pair lands in the right slot: compare against the analytic model.
  for (double r = 2.0; r < 4.5; r += 0.31) {
    ASSERT_NEAR(t.phi(0, 1).value(r), alloy.phi(0, 1, r), 5e-3) << r;
    ASSERT_NEAR(t.phi(1, 1).value(r), alloy.phi(1, 1, r), 5e-3) << r;
  }
}

TEST(Setfl, RejectsMalformedInput) {
  {
    std::istringstream is("only\ntwo lines\n");
    EXPECT_THROW(parse_setfl(is), std::runtime_error);
  }
  {
    std::istringstream is("c1\nc2\nc3\n0\n");
    EXPECT_THROW(parse_setfl(is), std::runtime_error);
  }
  {
    // Truncated numeric body.
    std::istringstream is("c1\nc2\nc3\n1 Fe\n10 0.1 10 0.1 5.0\n26 55.8 2.855 bcc\n1 2 3\n");
    EXPECT_THROW(parse_setfl(is), std::runtime_error);
  }
  EXPECT_THROW(load_setfl("/nonexistent.setfl"), std::runtime_error);
}

TEST(Setfl, PhiSingularityClamped) {
  const EamModel fe = EamModel::iron();
  const SetflData d = setfl_from_model(fe, {"Fe"});
  const EamTableSet t = tables_from_setfl(d, 1000, /*r_min=*/0.5);
  // Below r_min the pair value saturates instead of diverging.
  EXPECT_TRUE(std::isfinite(t.phi(0, 0).value(0.5)));
  EXPECT_GT(t.phi(0, 0).value(0.5), 0.0);  // repulsive wall
}

}  // namespace
}  // namespace mmd::pot
