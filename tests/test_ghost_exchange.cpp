#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "comm/world.h"
#include "lattice/ghost_exchange.h"

namespace mmd::lat {
namespace {

constexpr double kA = 2.855;
constexpr double kCut = 5.0;

struct Fixture {
  BccGeometry geo;
  DomainDecomposition dd;

  Fixture(int n, int nranks) : geo(n, n, n, kA), dd(geo, nranks, 2) {}
};

/// Ghost entries must mirror the owner's data, with positions shifted by the
/// box length across the periodic boundary.
void check_ghosts_consistent(const BccGeometry& /*geo*/, LatticeNeighborList& lnl) {
  const LocalBox& b = lnl.box();
  for (std::size_t i = 0; i < lnl.size(); ++i) {
    const LocalCoord c = b.coord_of(i);
    if (b.owns(c)) continue;
    const AtomEntry& e = lnl.entry(i);
    ASSERT_FALSE(e.is_unset()) << "ghost not filled at (" << c.x << "," << c.y
                               << "," << c.z << "," << c.sub << ")";
    if (!e.is_atom()) continue;
    // Position must equal the ideal local-frame position for a perfect
    // crystal (the exchange applied the right shift).
    const util::Vec3 ideal = lnl.ideal_position(i);
    ASSERT_NEAR((e.r - ideal).norm(), 0.0, 1e-12);
    ASSERT_EQ(e.id, lnl.site_rank(i));
  }
}

class GhostExchangeRanks : public ::testing::TestWithParam<int> {};

TEST_P(GhostExchangeRanks, PerfectCrystalGhostsFilled) {
  const int nranks = GetParam();
  Fixture fx(8, nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    LatticeNeighborList lnl(fx.geo, fx.dd.local_box(comm.rank()), kCut);
    lnl.fill_perfect(Species::Fe);
    // Scramble ghosts so the test actually checks the exchange.
    lnl.clear_ghosts();
    GhostExchange ghosts(lnl, fx.dd, comm.rank());
    ghosts.exchange(comm);
    check_ghosts_consistent(fx.geo, lnl);
    EXPECT_GT(ghosts.bytes_sent(), 0u);
  });
}

TEST_P(GhostExchangeRanks, PerturbedPositionsPropagate) {
  const int nranks = GetParam();
  Fixture fx(8, nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    LatticeNeighborList lnl(fx.geo, fx.dd.local_box(comm.rank()), kCut);
    lnl.fill_perfect(Species::Fe);
    // Deterministic per-site perturbation on owned entries.
    for (std::size_t idx : lnl.owned_indices()) {
      AtomEntry& e = lnl.entry(idx);
      const double s = 0.01 * static_cast<double>(e.id % 7);
      e.r += util::Vec3{s, -s, 0.5 * s};
      e.rho = static_cast<double>(e.id);
    }
    GhostExchange ghosts(lnl, fx.dd, comm.rank());
    ghosts.exchange(comm);
    // Every ghost must carry the same perturbation (in the local frame).
    const LocalBox& b = lnl.box();
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      if (b.owns(b.coord_of(i))) continue;
      const AtomEntry& e = lnl.entry(i);
      const double s = 0.01 * static_cast<double>(e.id % 7);
      const util::Vec3 expect = lnl.ideal_position(i) + util::Vec3{s, -s, 0.5 * s};
      ASSERT_NEAR((e.r - expect).norm(), 0.0, 1e-12);
      ASSERT_DOUBLE_EQ(e.rho, static_cast<double>(e.id));
    }
  });
}

TEST_P(GhostExchangeRanks, RhoExchangeRefreshesGhostDensity) {
  const int nranks = GetParam();
  Fixture fx(8, nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    LatticeNeighborList lnl(fx.geo, fx.dd.local_box(comm.rank()), kCut);
    lnl.fill_perfect(Species::Fe);
    GhostExchange ghosts(lnl, fx.dd, comm.rank());
    ghosts.exchange(comm);
    for (std::size_t idx : lnl.owned_indices()) {
      lnl.entry(idx).rho = 1000.0 + static_cast<double>(lnl.entry(idx).id);
    }
    ghosts.exchange_rho(comm);
    const LocalBox& b = lnl.box();
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      if (b.owns(b.coord_of(i))) continue;
      ASSERT_DOUBLE_EQ(lnl.entry(i).rho,
                       1000.0 + static_cast<double>(lnl.entry(i).id));
    }
  });
}

TEST_P(GhostExchangeRanks, RunawaysAppearInGhostChains) {
  const int nranks = GetParam();
  Fixture fx(8, nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    LatticeNeighborList lnl(fx.geo, fx.dd.local_box(comm.rank()), kCut);
    lnl.fill_perfect(Species::Fe);
    // Every rank detaches the atom at its owned origin corner site.
    const std::size_t idx = lnl.box().entry_index({0, 0, 0, 0});
    lnl.entry(idx).r += util::Vec3{0.3, 0.3, 0.3};
    lnl.detach(idx);
    GhostExchange ghosts(lnl, fx.dd, comm.rank());
    ghosts.exchange(comm);
    // Globally there are nranks run-aways; locally we must see our own plus
    // every ghost image of neighbors' run-aways. At minimum: ghost chain
    // nodes exist somewhere if nranks > 1 or the box wraps (always true).
    std::size_t chain_nodes = 0;
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      for (std::int32_t ri = lnl.entry(i).runaway_head;
           ri != AtomEntry::kNoRunaway; ri = lnl.runaway(ri).next) {
        ++chain_nodes;
      }
    }
    EXPECT_GT(chain_nodes, 1u);  // own + at least one ghost image
    // The vacancy tombstone must also be visible in ghost copies.
    std::size_t ghost_vacancies = 0;
    const LocalBox& b = lnl.box();
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      if (!b.owns(b.coord_of(i)) && lnl.entry(i).is_vacancy()) ++ghost_vacancies;
    }
    EXPECT_GT(ghost_vacancies, 0u);
  });
}

TEST_P(GhostExchangeRanks, EmigrantRoutedToOwner) {
  const int nranks = GetParam();
  Fixture fx(8, nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    LatticeNeighborList lnl(fx.geo, fx.dd.local_box(comm.rank()), kCut);
    lnl.fill_perfect(Species::Fe);
    GhostExchange ghosts(lnl, fx.dd, comm.rank());
    std::vector<RunawayAtom> emigrants;
    if (comm.rank() == 0) {
      // Rank 0 pushes an atom across its low-x boundary (wraps to the far
      // side of the box, possibly another rank).
      const std::size_t idx = lnl.box().entry_index({0, 2, 2, 0});
      AtomEntry& e = lnl.entry(idx);
      e.r += util::Vec3{-0.8 * kA, 0.0, 0.0};
      lnl.detach(idx, &emigrants);
      lnl.rehome_runaways(&emigrants);
    }
    ghosts.exchange(comm, std::move(emigrants));
    // Atom count is conserved globally.
    const auto atoms = comm.allreduce_sum_u64(
        static_cast<std::uint64_t>(lnl.count_owned_atoms()));
    EXPECT_EQ(atoms, static_cast<std::uint64_t>(fx.geo.num_sites()));
    const auto vacs = comm.allreduce_sum_u64(
        static_cast<std::uint64_t>(lnl.count_owned_vacancies()));
    EXPECT_EQ(vacs, 1u);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, GhostExchangeRanks,
                         ::testing::Values(1, 2, 4, 8));

class ReverseAccumulate : public ::testing::TestWithParam<int> {};

TEST_P(ReverseAccumulate, HaloContributionsSumOnOwner) {
  // Seed every entry's rho with 1.0 (owned AND ghost copies). After reverse
  // accumulation, each owned entry holds 1 + (number of ghost images of its
  // site across all ranks) — exactly the multiplicity the forward exchange
  // created. Verifies routing, ordering, and corner forwarding.
  const int nranks = GetParam();
  Fixture fx(8, nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    LatticeNeighborList lnl(fx.geo, fx.dd.local_box(comm.rank()), kCut);
    lnl.fill_perfect(Species::Fe);
    GhostExchange ghosts(lnl, fx.dd, comm.rank());
    ghosts.exchange(comm);
    for (std::size_t i = 0; i < lnl.size(); ++i) lnl.entry(i).rho = 1.0;
    ghosts.reverse_accumulate_rho(comm);
    // Count global images per site: every rank's storage contributes one
    // image per representation. Compute expected multiplicity directly from
    // all ranks' boxes.
    const LocalBox& b = lnl.box();
    for (std::size_t idx : lnl.owned_indices()) {
      const LocalCoord c = b.coord_of(idx);
      // Expected: 1 (self) + number of ghost images globally. Each axis
      // contributes independently: a site has an image in a rank's storage
      // for every in-halo representation; total images = product over axes
      // of per-axis representation counts summed over rank slabs. Instead of
      // re-deriving, use the known closed form for this uniform grid: count
      // images by brute force over all ranks' boxes.
      int images = 0;
      const SiteCoord g = fx.geo.wrap({c.x + b.ox, c.y + b.oy, c.z + b.oz, c.sub});
      for (int r = 0; r < nranks; ++r) {
        const LocalBox rb = fx.dd.local_box(r);
        auto reps = [&](int gc, int origin, int len, int n) {
          int cnt = 0;
          int base = (gc - origin) % n;
          while (base - n >= -rb.halo) base -= n;
          while (base < -rb.halo) base += n;
          for (int cc = base; cc < len + rb.halo; cc += n) ++cnt;
          return cnt;
        };
        images += reps(g.x, rb.ox, rb.lx, fx.geo.nx()) *
                  reps(g.y, rb.oy, rb.ly, fx.geo.ny()) *
                  reps(g.z, rb.oz, rb.lz, fx.geo.nz());
      }
      ASSERT_NEAR(lnl.entry(idx).rho, static_cast<double>(images), 1e-12)
          << "site (" << c.x << "," << c.y << "," << c.z << "," << c.sub << ")";
    }
  });
}

TEST_P(ReverseAccumulate, ForceFieldRoundTrip) {
  // Zero forces everywhere except a constant vector on every ghost entry;
  // after the reverse pass the total force over owned entries must equal
  // (ghost count across all ranks) * that vector — nothing lost or dropped.
  const int nranks = GetParam();
  Fixture fx(8, nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    LatticeNeighborList lnl(fx.geo, fx.dd.local_box(comm.rank()), kCut);
    lnl.fill_perfect(Species::Fe);
    GhostExchange ghosts(lnl, fx.dd, comm.rank());
    ghosts.exchange(comm);
    const LocalBox& b = lnl.box();
    std::uint64_t my_ghosts = 0;
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      const bool owned = b.owns(b.coord_of(i));
      lnl.entry(i).f = owned ? util::Vec3{} : util::Vec3{1.0, -2.0, 3.0};
      if (!owned) ++my_ghosts;
    }
    ghosts.reverse_accumulate_force(comm);
    util::Vec3 total{};
    for (std::size_t idx : lnl.owned_indices()) total += lnl.entry(idx).f;
    const double sum_x = comm.allreduce_sum(total.x);
    const auto ghost_count = comm.allreduce_sum_u64(my_ghosts);
    EXPECT_NEAR(sum_x, static_cast<double>(ghost_count) * 1.0, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ReverseAccumulate,
                         ::testing::Values(1, 2, 4, 8));

TEST(GhostExchange, BytesSentCountsEveryPath) {
  // bytes_sent() must grow across ALL traffic paths — full exchange,
  // rho-only refresh (split-phase included), and both reverse accumulations
  // — so the weak-scaling communication split sees the whole volume.
  Fixture fx(8, 4);
  comm::World world(4);
  world.run([&](comm::Comm& comm) {
    LatticeNeighborList lnl(fx.geo, fx.dd.local_box(comm.rank()), kCut);
    lnl.fill_perfect(Species::Fe);
    GhostExchange ghosts(lnl, fx.dd, comm.rank());

    ghosts.exchange(comm);
    const std::uint64_t after_full = ghosts.bytes_sent();
    EXPECT_GT(after_full, 0u);

    ghosts.exchange_rho(comm);
    const std::uint64_t after_rho = ghosts.bytes_sent();
    EXPECT_GT(after_rho, after_full);

    auto flight = ghosts.begin_exchange_rho(comm);
    ghosts.finish_exchange_rho(comm, flight);
    const std::uint64_t after_split_rho = ghosts.bytes_sent();
    EXPECT_GT(after_split_rho, after_rho);
    // Split-phase and one-shot rho refreshes move identical volume.
    EXPECT_EQ(after_split_rho - after_rho, after_rho - after_full);

    ghosts.reverse_accumulate_rho(comm);
    const std::uint64_t after_rev_rho = ghosts.bytes_sent();
    EXPECT_GT(after_rev_rho, after_split_rho);

    ghosts.reverse_accumulate_force(comm);
    const std::uint64_t after_rev_f = ghosts.bytes_sent();
    EXPECT_GT(after_rev_f, after_rev_rho);
    // Force slabs carry Vec3 per entry vs one double for rho: 3x the volume.
    EXPECT_EQ(after_rev_f - after_rev_rho, 3 * (after_rev_rho - after_split_rho));

    // Re-fill ghosts: reverse accumulation leaves them garbage by contract.
    ghosts.exchange(comm);
  });
}

TEST(GhostExchange, SplitRhoMatchesOneShot) {
  // begin/finish with perturbed owned rho must leave ghosts identical to the
  // one-shot exchange_rho (the overlap path is physics-identical).
  Fixture fx(8, 8);
  comm::World world(8);
  world.run([&](comm::Comm& comm) {
    LatticeNeighborList lnl(fx.geo, fx.dd.local_box(comm.rank()), kCut);
    lnl.fill_perfect(Species::Fe);
    GhostExchange ghosts(lnl, fx.dd, comm.rank());
    ghosts.exchange(comm);
    for (std::size_t idx : lnl.owned_indices()) {
      AtomEntry& e = lnl.entry(idx);
      e.rho = 5.0 + 0.25 * static_cast<double>(e.id % 101);
    }
    ghosts.exchange_rho(comm);
    std::vector<double> oneshot(lnl.size());
    for (std::size_t i = 0; i < lnl.size(); ++i) oneshot[i] = lnl.entry(i).rho;
    // Scramble ghost rho, then redo via the split-phase path.
    const LocalBox& b = lnl.box();
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      if (!b.owns(b.coord_of(i))) lnl.entry(i).rho = -777.0;
    }
    auto flight = ghosts.begin_exchange_rho(comm);
    ghosts.finish_exchange_rho(comm, flight);
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      ASSERT_EQ(lnl.entry(i).rho, oneshot[i]) << "entry " << i;
    }
  });
}

TEST(GhostExchange, StaticPlanIsReusable) {
  // Two consecutive exchanges produce the same ghost state (pattern reuse,
  // paper: "the communication pattern is static").
  Fixture fx(8, 2);
  comm::World world(2);
  world.run([&](comm::Comm& comm) {
    LatticeNeighborList lnl(fx.geo, fx.dd.local_box(comm.rank()), kCut);
    lnl.fill_perfect(Species::Fe);
    GhostExchange ghosts(lnl, fx.dd, comm.rank());
    ghosts.exchange(comm);
    std::vector<util::Vec3> snapshot(lnl.size());
    for (std::size_t i = 0; i < lnl.size(); ++i) snapshot[i] = lnl.entry(i).r;
    ghosts.exchange(comm);
    for (std::size_t i = 0; i < lnl.size(); ++i) {
      ASSERT_EQ(lnl.entry(i).r, snapshot[i]);
    }
  });
}

}  // namespace
}  // namespace mmd::lat
