#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "md/engine.h"
#include "md/newton_force.h"
#include "md/reference_force.h"

namespace mmd::md {
namespace {

struct Rig {
  MdConfig cfg;
  MdSetup setup;
  pot::EamTableSet tables;

  explicit Rig(int nranks, int box = 8)
      : cfg(make_cfg(box)),
        setup(cfg, nranks),
        tables(pot::EamTableSet::build(
            pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff),
            cfg.table_segments)) {}

  static MdConfig make_cfg(int box) {
    MdConfig c;
    c.nx = c.ny = c.nz = box;
    c.temperature = 500.0;
    c.table_segments = 800;
    return c;
  }
};

class NewtonRanks : public ::testing::TestWithParam<int> {};

TEST_P(NewtonRanks, MatchesReferenceOnThermalCrystal) {
  const int nranks = GetParam();
  Rig rig(nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 3);  // develop displacements (and refresh ghosts)
    auto& lnl = engine.lattice();
    lat::GhostExchange ghosts(lnl, rig.setup.dd, comm.rank());
    ghosts.exchange(comm);

    // Reference pass.
    ReferenceForce ref(rig.tables);
    ref.compute_rho(lnl);
    ghosts.exchange_rho(comm);
    ref.compute_forces(lnl);
    std::vector<double> rho_ref;
    std::vector<util::Vec3> f_ref;
    for (std::size_t i : lnl.owned_indices()) {
      rho_ref.push_back(lnl.entry(i).rho);
      f_ref.push_back(lnl.entry(i).f);
    }

    // Newton (half-loop + reverse accumulation) pass.
    NewtonForce newton(rig.tables);
    newton.compute_rho(comm, lnl, ghosts);
    newton.compute_forces(comm, lnl, ghosts);

    double rho_err = 0.0, f_err = 0.0;
    std::size_t k = 0;
    for (std::size_t i : lnl.owned_indices()) {
      rho_err = std::max(rho_err, std::abs(lnl.entry(i).rho - rho_ref[k]));
      f_err = std::max(f_err, (lnl.entry(i).f - f_ref[k]).norm());
      ++k;
    }
    EXPECT_LT(comm.allreduce_max(rho_err), 1e-10);
    EXPECT_LT(comm.allreduce_max(f_err), 1e-9);
  });
}

TEST_P(NewtonRanks, MatchesReferenceWithRunaways) {
  const int nranks = GetParam();
  Rig rig(nranks);
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    auto& lnl = engine.lattice();
    // Every rank detaches one atom near its subdomain corner.
    const std::size_t idx = lnl.box().entry_index({1, 1, 1, 0});
    lnl.entry(idx).r += util::Vec3{0.5, 0.4, 0.3};
    lnl.detach(idx);
    lat::GhostExchange ghosts(lnl, rig.setup.dd, comm.rank());
    ghosts.exchange(comm);

    ReferenceForce ref(rig.tables);
    ref.compute_rho(lnl);
    ghosts.exchange_rho(comm);
    ref.compute_forces(lnl);
    std::vector<util::Vec3> f_ref;
    for (std::size_t i : lnl.owned_indices()) f_ref.push_back(lnl.entry(i).f);
    std::vector<util::Vec3> fr_ref;
    lnl.for_each_owned_runaway(
        [&](std::int32_t ri, std::size_t) { fr_ref.push_back(lnl.runaway(ri).f); });

    NewtonForce newton(rig.tables);
    newton.compute_rho(comm, lnl, ghosts);
    newton.compute_forces(comm, lnl, ghosts);

    double err = 0.0;
    std::size_t k = 0;
    for (std::size_t i : lnl.owned_indices()) {
      err = std::max(err, (lnl.entry(i).f - f_ref[k++]).norm());
    }
    k = 0;
    lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
      err = std::max(err, (lnl.runaway(ri).f - fr_ref[k++]).norm());
    });
    EXPECT_LT(comm.allreduce_max(err), 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, NewtonRanks, ::testing::Values(1, 2, 4, 8));

TEST(NewtonForce, RejectsAlloyTables) {
  const auto alloy = pot::EamTableSet::build(pot::EamModel::iron_copper(), 300);
  EXPECT_THROW(NewtonForce nf(alloy), std::invalid_argument);
}

TEST(NewtonForce, HalvesPairArithmetic) {
  // Count pair evaluations via an instrumented sweep: the half loop visits
  // each unordered lattice pair once; the full loop twice.
  Rig rig(1, 6);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    lat::LatticeNeighborList lnl(rig.setup.geo, rig.setup.dd.local_box(0),
                                 rig.cfg.cutoff + kNeighborSkin);
    lnl.fill_perfect(lat::Species::Fe);
    lat::GhostExchange ghosts(lnl, rig.setup.dd, 0);
    ghosts.exchange(comm);
    std::uint64_t half = 0, full = 0;
    const double cut2 = rig.tables.cutoff * rig.tables.cutoff;
    for (std::size_t idx : lnl.owned_indices()) {
      const auto& e = lnl.entry(idx);
      const int sub = static_cast<int>(idx & 1);
      for (const std::int64_t d : lnl.deltas(sub)) {
        const auto& o = lnl.entry(idx + static_cast<std::size_t>(d));
        if ((o.r - e.r).norm2() > cut2) continue;
        ++full;
        if (o.id > e.id) ++half;
      }
    }
    EXPECT_EQ(full, 2 * half);
  });
}

}  // namespace
}  // namespace mmd::md
