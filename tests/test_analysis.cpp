#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/defects.h"
#include "analysis/diffusion.h"
#include "analysis/rdf.h"
#include "md/engine.h"

namespace mmd::analysis {
namespace {

constexpr double kA = 2.855;

std::vector<util::Vec3> perfect_positions(const lat::BccGeometry& g) {
  std::vector<util::Vec3> pos(static_cast<std::size_t>(g.num_sites()));
  for (std::int64_t id = 0; id < g.num_sites(); ++id) {
    pos[static_cast<std::size_t>(id)] = g.position(g.site_coord(id));
  }
  return pos;
}

TEST(Rdf, RejectsBadArgs) {
  EXPECT_THROW(RadialDistribution(0.0, 10), std::invalid_argument);
  EXPECT_THROW(RadialDistribution(5.0, 0), std::invalid_argument);
}

TEST(Rdf, EmptyBeforeAccumulate) {
  RadialDistribution rdf(5.0, 50);
  for (const auto& b : rdf.result()) EXPECT_DOUBLE_EQ(b.g, 0.0);
}

TEST(Rdf, PerfectBccPeaksAtFirstShell) {
  lat::BccGeometry g(6, 6, 6, kA);
  RadialDistribution rdf(5.0, 100);
  rdf.accumulate(perfect_positions(g), g.box_length());
  // Highest peak at the 1NN distance sqrt(3)/2 * a = 2.47 A.
  EXPECT_NEAR(rdf.first_peak(), std::sqrt(3.0) / 2.0 * kA, 0.06);
  // No pairs below the first shell.
  for (const auto& b : rdf.result()) {
    if (b.r_hi < 2.3) {
      EXPECT_DOUBLE_EQ(b.g, 0.0) << b.r_lo;
    }
  }
}

TEST(Rdf, SecondShellPresent) {
  lat::BccGeometry g(6, 6, 6, kA);
  RadialDistribution rdf(5.0, 200);
  rdf.accumulate(perfect_positions(g), g.box_length());
  bool second = false;
  for (const auto& b : rdf.result()) {
    if (b.r_lo <= kA && kA < b.r_hi) second = b.g > 1.0;
  }
  EXPECT_TRUE(second);
}

TEST(Rdf, AccumulatesFromLattice) {
  lat::BccGeometry g(5, 5, 5, kA);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 5, 5, 5, 2}, 5.0);
  lnl.fill_perfect(lat::Species::Fe);
  RadialDistribution rdf(5.0, 100);
  rdf.accumulate(lnl);
  EXPECT_NEAR(rdf.first_peak(), std::sqrt(3.0) / 2.0 * kA, 0.06);
}

TEST(Rdf, ThermalBroadening) {
  // Displaced positions smear the delta peaks but keep the same maximum.
  lat::BccGeometry g(6, 6, 6, kA);
  auto pos = perfect_positions(g);
  util::Rng rng(3);
  for (auto& p : pos) {
    p += util::Vec3{0.1 * rng.normal(), 0.1 * rng.normal(), 0.1 * rng.normal()};
  }
  RadialDistribution rdf(5.0, 100);
  rdf.accumulate(pos, g.box_length());
  EXPECT_NEAR(rdf.first_peak(), std::sqrt(3.0) / 2.0 * kA, 0.15);
}

TEST(VacancyTracker, NoMotionNoMsd) {
  lat::BccGeometry g(8, 8, 8, kA);
  VacancyTracker tr(g);
  std::vector<std::int64_t> v{g.site_id({2, 2, 2, 0}), g.site_id({5, 5, 5, 1})};
  tr.record(0.0, v);
  tr.record(1.0, v);
  EXPECT_EQ(tr.tracked(), 2u);
  EXPECT_DOUBLE_EQ(tr.msd(), 0.0);
  EXPECT_EQ(tr.hops(), 0u);
  EXPECT_DOUBLE_EQ(tr.diffusion_coefficient(), 0.0);
}

TEST(VacancyTracker, SingleHopMsd) {
  lat::BccGeometry g(8, 8, 8, kA);
  VacancyTracker tr(g);
  tr.record(0.0, {g.site_id({2, 2, 2, 0})});
  tr.record(0.5, {g.site_id({2, 2, 2, 1})});  // one 1NN hop
  const double d1 = std::sqrt(3.0) / 2.0 * kA;
  EXPECT_EQ(tr.hops(), 1u);
  EXPECT_NEAR(tr.msd(), d1 * d1, 1e-9);
  EXPECT_NEAR(tr.diffusion_coefficient(), d1 * d1 / (6.0 * 0.5), 1e-9);
}

TEST(VacancyTracker, UnwrapsAcrossBoundary) {
  lat::BccGeometry g(8, 8, 8, kA);
  VacancyTracker tr(g);
  // Hop from the body center of the last cell across the periodic x face.
  tr.record(0.0, {g.site_id({7, 4, 4, 1})});
  tr.record(1.0, {g.site_id({0, 5, 5, 0})});  // wraps in x
  EXPECT_EQ(tr.hops(), 1u);
  const double d1 = std::sqrt(3.0) / 2.0 * kA;
  EXPECT_NEAR(std::sqrt(tr.msd()), d1, 1e-9);
}

TEST(VacancyTracker, MultiStepAccumulates) {
  lat::BccGeometry g(8, 8, 8, kA);
  VacancyTracker tr(g);
  tr.record(0.0, {g.site_id({2, 2, 2, 0})});
  tr.record(1.0, {g.site_id({2, 2, 2, 1})});
  tr.record(2.0, {g.site_id({3, 3, 3, 0})});
  EXPECT_EQ(tr.hops(), 2u);
  // Displacement: (0.5, 0.5, 0.5)a + (0.5, 0.5, 0.5)a = (1,1,1)a.
  EXPECT_NEAR(std::sqrt(tr.msd()), std::sqrt(3.0) * kA, 1e-9);
}

TEST(VacancyTracker, RandomWalkTheory) {
  const double d = VacancyTracker::random_walk_d(1e7, kA);
  const double d1 = std::sqrt(3.0) / 2.0 * kA;
  EXPECT_NEAR(d, 1e7 * d1 * d1 / 6.0, 1e-6);
}

TEST(Defects, EmptyLatticeNoPairs) {
  lat::BccGeometry g(5, 5, 5, kA);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 5, 5, 5, 2}, 5.0);
  lnl.fill_perfect(lat::Species::Fe);
  const auto a = analyze_defects(lnl);
  EXPECT_TRUE(a.pairs.empty());
  EXPECT_EQ(a.unmatched_vacancies, 0u);
}

TEST(Defects, SingleFrenkelPairMatched) {
  lat::BccGeometry g(6, 6, 6, kA);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 6, 6, 6, 2}, 5.0);
  lnl.fill_perfect(lat::Species::Fe);
  const std::size_t idx = lnl.box().entry_index({3, 3, 3, 0});
  lnl.entry(idx).r += util::Vec3{2.0, 0.0, 0.0};
  lnl.detach(idx);
  const auto a = analyze_defects(lnl);
  ASSERT_EQ(a.pairs.size(), 1u);
  EXPECT_NEAR(a.pairs[0].separation, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(a.fraction_within(2.5), 1.0);
  EXPECT_DOUBLE_EQ(a.fraction_within(1.0), 0.0);
}

TEST(Defects, GlobalGatherMatchesCascade) {
  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.temperature = 100.0;
  cfg.table_segments = 500;
  const md::MdSetup setup(cfg, 2);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);
  comm::World world(2);
  world.run([&](comm::Comm& comm) {
    md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
    engine.initialize(comm);
    engine.inject_pka(comm, setup.geo.site_id({4, 4, 4, 0}), {1, 0.6, 0.3}, 60.0);
    engine.run_for(comm, 0.04);
    const auto d = engine.defects(comm);
    const auto a = analyze_defects_global(comm, engine.lattice());
    if (comm.rank() == 0) {
      EXPECT_EQ(a.pairs.size() + a.unmatched_vacancies, d.vacancies);
      for (const auto& p : a.pairs) EXPECT_GT(p.separation, 0.0);
    }
  });
}

}  // namespace
}  // namespace mmd::analysis
