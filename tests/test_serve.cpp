// Campaign service-mode building blocks: the priority JobQueue, the shared
// immutable AssetCache, and declarative campaign parsing with sweep-axis
// matrix expansion (src/serve/, docs/SERVICE.md).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/asset_cache.h"
#include "serve/campaign.h"
#include "serve/job_queue.h"
#include "util/key_value.h"

namespace mmd {
namespace {

serve::ScenarioSpec job(const std::string& id, int priority) {
  serve::ScenarioSpec s;
  s.id = id;
  s.priority = priority;
  return s;
}

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

TEST(JobQueue, PopsHighestPriorityFirstFifoWithinTies) {
  serve::JobQueue q;
  q.push(job("a", 0));
  q.push(job("b", 5));
  q.push(job("c", 0));
  q.push(job("d", 5));
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop()->id, "b");   // highest priority first
  EXPECT_EQ(q.pop()->id, "d");   // FIFO among equal priorities
  EXPECT_EQ(q.pop()->id, "a");
  EXPECT_EQ(q.pop()->id, "c");
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(JobQueue, PopDrainsRemainderAfterCloseThenReturnsNullopt) {
  serve::JobQueue q;
  q.push(job("a", 0));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop()->id, "a");
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_THROW(q.push(job("b", 0)), std::logic_error);
}

TEST(JobQueue, BlockedPopWakesOnPush) {
  serve::JobQueue q;
  std::string got;
  std::thread consumer([&] {
    auto j = q.pop();
    ASSERT_TRUE(j.has_value());
    got = j->id;
  });
  q.push(job("late", 0));
  consumer.join();
  EXPECT_EQ(got, "late");
}

TEST(JobQueue, BlockedPopWakesOnClose) {
  serve::JobQueue q;
  bool got_null = false;
  std::thread consumer([&] { got_null = !q.pop().has_value(); });
  q.close();
  consumer.join();
  EXPECT_TRUE(got_null);
}

// ---------------------------------------------------------------------------
// AssetCache
// ---------------------------------------------------------------------------

core::SimulationConfig tiny_cfg() {
  core::SimulationConfig cfg;
  cfg.md.table_segments = 100;
  cfg.kmc_table_segments = 50;
  return cfg;
}

TEST(AssetCache, SharesTablesAcrossJobsWithEqualKeys) {
  serve::AssetCache cache;
  const auto a = cache.assets_for(tiny_cfg());
  const auto b = cache.assets_for(tiny_cfg());
  EXPECT_EQ(a.md_tables.get(), b.md_tables.get());    // same object, not a copy
  EXPECT_EQ(a.kmc_tables.get(), b.kmc_tables.get());
  // First call built 2 distinct sets (MD + KMC resolution); second call hit
  // both.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(AssetCache, SharesOneSetWhenMdAndKmcResolutionAgree) {
  serve::AssetCache cache;
  auto cfg = tiny_cfg();
  cfg.kmc_table_segments = cfg.md.table_segments;
  const auto a = cache.assets_for(cfg);
  EXPECT_EQ(a.md_tables.get(), a.kmc_tables.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AssetCache, DistinguishesAlloyAndSegmentCount) {
  serve::AssetCache cache;
  auto cfg = tiny_cfg();
  (void)cache.assets_for(cfg);
  cfg.solute_fraction = 0.05;  // alloy tables differ in content
  (void)cache.assets_for(cfg);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(AssetCache, ConcurrentRequestsYieldOneBuild) {
  serve::AssetCache cache;
  std::vector<std::thread> threads;
  std::vector<core::SimulationAssets> got(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &got, t] { got[static_cast<std::size_t>(t)] = cache.assets_for(tiny_cfg()); });
  }
  for (auto& t : threads) t.join();
  for (const auto& a : got) {
    EXPECT_EQ(a.md_tables.get(), got[0].md_tables.get());
  }
  EXPECT_EQ(cache.stats().misses, 2u);
}

// ---------------------------------------------------------------------------
// CampaignSpec parsing + matrix expansion
// ---------------------------------------------------------------------------

TEST(CampaignSpec, ExpandsSweepAxesAsCrossProductInFileOrder) {
  const auto kv = util::KeyValueConfig::parse(
      "campaign.name = m\n"
      "box = 6\n"
      "sweep.pka.energy_ev = 80,160\n"
      "sweep.temperature = 300,600,900\n",
      "campaign.mmd");
  const auto spec = serve::CampaignSpec::parse(kv);
  ASSERT_EQ(spec.jobs.size(), 6u);
  EXPECT_EQ(spec.name, "m");
  // Axis order follows the file; the later axis spins fastest.
  EXPECT_EQ(spec.jobs[0].id, "j000");
  EXPECT_EQ(spec.jobs[0].label, "pka.energy_ev=80,temperature=300");
  EXPECT_EQ(spec.jobs[1].label, "pka.energy_ev=80,temperature=600");
  EXPECT_EQ(spec.jobs[3].label, "pka.energy_ev=160,temperature=300");
  // Base keys + overrides land in each job's config.
  EXPECT_EQ(spec.jobs[3].config.get_int("box", 0), 6);
  EXPECT_EQ(spec.jobs[3].config.get_double("pka.energy_ev", 0), 160.0);
  EXPECT_FALSE(spec.uses_slave_pool);
}

TEST(CampaignSpec, NoAxesYieldsOneBaseJob) {
  const auto spec = serve::CampaignSpec::parse(
      util::KeyValueConfig::parse("box = 8\n"));
  ASSERT_EQ(spec.jobs.size(), 1u);
  EXPECT_EQ(spec.jobs[0].label, "base");
}

TEST(CampaignSpec, SweepableJobPriorityReachesTheSpec) {
  const auto spec = serve::CampaignSpec::parse(
      util::KeyValueConfig::parse("sweep.job.priority = 2,7\n"));
  ASSERT_EQ(spec.jobs.size(), 2u);
  EXPECT_EQ(spec.jobs[0].priority, 2);
  EXPECT_EQ(spec.jobs[1].priority, 7);
}

TEST(CampaignSpec, TypoInBaseKeyNamesCampaignFileAndLine) {
  const auto kv = util::KeyValueConfig::parse(
      "box = 6\n"
      "pka.enerty_ev = 80\n",  // typo
      "campaign.mmd");
  try {
    (void)serve::CampaignSpec::parse(kv);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("campaign.mmd:2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("pka.enerty_ev"), std::string::npos);
  }
}

TEST(CampaignSpec, TypoInSweepTargetNamesCampaignFileAndLine) {
  const auto kv = util::KeyValueConfig::parse(
      "box = 6\n"
      "sweep.kmc.cylces = 10,20\n",  // typo
      "campaign.mmd");
  try {
    (void)serve::CampaignSpec::parse(kv);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("campaign.mmd:2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("kmc.cylces"), std::string::npos);
  }
}

TEST(CampaignSpec, RejectsRunnerOwnedKeys) {
  EXPECT_THROW(serve::CampaignSpec::parse(util::KeyValueConfig::parse(
                   "checkpoint.dir = somewhere\n")),
               std::invalid_argument);
  EXPECT_THROW(serve::CampaignSpec::parse(
                   util::KeyValueConfig::parse("xyz = out.xyz\n")),
               std::invalid_argument);
  EXPECT_THROW(serve::CampaignSpec::parse(util::KeyValueConfig::parse(
                   "sweep.checkpoint.every = 1,2\n")),
               std::invalid_argument);
}

TEST(CampaignSpec, RejectsCampaignKeyTypos) {
  EXPECT_THROW(serve::CampaignSpec::parse(util::KeyValueConfig::parse(
                   "campaign.max_concurrnet = 4\n")),
               std::invalid_argument);
}

TEST(CampaignSpec, RejectsEmptySweepValues) {
  EXPECT_THROW(serve::CampaignSpec::parse(util::KeyValueConfig::parse(
                   "sweep.temperature = 300,,600\n")),
               std::invalid_argument);
  EXPECT_THROW(serve::CampaignSpec::parse(
                   util::KeyValueConfig::parse("sweep.temperature =\n")),
               std::invalid_argument);
}

TEST(CampaignSpec, DetectsSlavePoolUse) {
  const auto spec = serve::CampaignSpec::parse(util::KeyValueConfig::parse(
      "accel = slave\nsweep.pka.energy_ev = 40,80\n"));
  EXPECT_TRUE(spec.uses_slave_pool);
}

TEST(CampaignSpec, ExampleTextParsesAndExpands) {
  const auto spec = serve::CampaignSpec::parse(
      util::KeyValueConfig::parse(serve::campaign_example_text(), "example"));
  EXPECT_EQ(spec.name, "quick-matrix");
  EXPECT_EQ(spec.max_concurrent, 4);
  EXPECT_EQ(spec.jobs.size(), 4u);
}

}  // namespace
}  // namespace mmd
