#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <mutex>
#include <vector>

#include "md/engine.h"

namespace mmd::md {
namespace {

MdConfig small_config() {
  MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  cfg.table_segments = 1000;  // fast table builds in tests
  return cfg;
}

struct TestRig {
  MdConfig cfg;
  MdSetup setup;
  pot::EamTableSet tables;

  explicit TestRig(const MdConfig& c, int nranks)
      : cfg(c),
        setup(c, nranks),
        tables(pot::EamTableSet::build(
            pot::EamModel::iron(c.lattice_constant, c.cutoff), c.table_segments)) {}
};

TEST(MdEngine, PerfectLatticeHasNearZeroForces) {
  MdConfig cfg = small_config();
  cfg.temperature = 0.0;  // no thermal noise
  TestRig rig(cfg, 1);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    double fmax = 0.0;
    auto& lnl = engine.lattice();
    for (std::size_t idx : lnl.owned_indices()) {
      fmax = std::max(fmax, lnl.entry(idx).f.norm());
    }
    // Forces vanish by symmetry on a perfect BCC crystal.
    EXPECT_LT(fmax, 1e-8);
  });
}

TEST(MdEngine, InitialTemperatureNearTarget) {
  MdConfig cfg = small_config();
  cfg.temperature = 600.0;
  TestRig rig(cfg, 1);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    // Maxwell-Boltzmann draw over 432 atoms: ~600 K within sampling noise.
    EXPECT_NEAR(engine.temperature(comm), 600.0, 80.0);
  });
}

TEST(MdEngine, MomentumApproximatelyConserved) {
  MdConfig cfg = small_config();
  TestRig rig(cfg, 1);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    auto total_p = [&]() {
      util::Vec3 p{};
      auto& lnl = engine.lattice();
      for (std::size_t idx : lnl.owned_indices()) {
        if (lnl.entry(idx).is_atom()) p += lnl.entry(idx).v;
      }
      lnl.for_each_owned_runaway(
          [&](std::int32_t ri, std::size_t) { p += lnl.runaway(ri).v; });
      return p;
    };
    const util::Vec3 p0 = total_p();
    engine.run(comm, 20);
    const util::Vec3 p1 = total_p();
    // Pairwise-equal-and-opposite forces conserve momentum; tolerance covers
    // floating-point accumulation over 20 steps.
    EXPECT_NEAR((p1 - p0).norm(), 0.0, 1e-6 * std::max(1.0, p0.norm()));
  });
}

TEST(MdEngine, NveEnergyDriftSmall) {
  MdConfig cfg = small_config();
  cfg.temperature = 300.0;
  TestRig rig(cfg, 1);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    const double e0 = engine.kinetic_energy(comm) + engine.potential_energy(comm);
    engine.run(comm, 50);
    const double e1 = engine.kinetic_energy(comm) + engine.potential_energy(comm);
    // NVE with 1 fs steps: drift well under 1% of the kinetic scale.
    const double scale = std::abs(engine.kinetic_energy(comm)) + 1.0;
    EXPECT_LT(std::abs(e1 - e0) / scale, 2e-2) << "e0=" << e0 << " e1=" << e1;
  });
}

TEST(MdEngine, LatticeStaysIntactAtModerateTemperature) {
  MdConfig cfg = small_config();
  cfg.temperature = 300.0;
  TestRig rig(cfg, 1);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 50);
    const auto d = engine.defects(comm);
    EXPECT_EQ(d.vacancies, 0u);
    EXPECT_EQ(d.interstitials, 0u);
    EXPECT_EQ(d.atoms, static_cast<std::uint64_t>(rig.setup.geo.num_sites()));
  });
}

TEST(MdEngine, PkaCreatesDefects) {
  MdConfig cfg = small_config();
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.temperature = 100.0;
  TestRig rig(cfg, 1);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    const std::int64_t site = rig.setup.geo.site_id({4, 4, 4, 0});
    engine.inject_pka(comm, site, {1.0, 0.7, 0.3}, 80.0);
    engine.run_for(comm, 0.05);  // 50 fs covers the ballistic phase
    EXPECT_GE(engine.simulated_time(), 0.05);
    const auto d = engine.defects(comm);
    // The cascade displaces at least the PKA itself.
    EXPECT_GE(d.vacancies, 1u);
    EXPECT_GE(d.interstitials, 1u);
    EXPECT_EQ(d.atoms, static_cast<std::uint64_t>(rig.setup.geo.num_sites()));
    // MD outputs vacancy coordinates for the KMC stage.
    const auto vacs = engine.vacancies();
    EXPECT_EQ(vacs.size(), d.vacancies);
    for (const auto& v : vacs) {
      EXPECT_GE(v.site_rank, 0);
      EXPECT_LT(v.site_rank, rig.setup.geo.num_sites());
    }
  });
}

class MdParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MdParallelEquivalence, TrajectoryIndependentOfDecomposition) {
  const int nranks = GetParam();
  MdConfig cfg = small_config();
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.temperature = 400.0;

  auto snapshot = [&](int ranks) {
    TestRig rig(cfg, ranks);
    std::vector<util::Vec3> pos(static_cast<std::size_t>(rig.setup.geo.num_sites()));
    std::mutex m;
    comm::World world(ranks);
    world.run([&](comm::Comm& comm) {
      MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
      engine.initialize(comm);
      engine.run(comm, 10);
      auto& lnl = engine.lattice();
      std::lock_guard lk(m);
      for (std::size_t idx : lnl.owned_indices()) {
        const auto& e = lnl.entry(idx);
        if (e.is_atom()) pos[static_cast<std::size_t>(e.id)] = e.r;
      }
    });
    return pos;
  };

  const auto serial = snapshot(1);
  const auto parallel = snapshot(nranks);
  double max_err = 0.0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Positions may differ by a box period in the local frame.
    util::Vec3 d = serial[i] - parallel[i];
    const util::Vec3 L{8 * cfg.lattice_constant, 8 * cfg.lattice_constant,
                       8 * cfg.lattice_constant};
    d.x -= L.x * std::nearbyint(d.x / L.x);
    d.y -= L.y * std::nearbyint(d.y / L.y);
    d.z -= L.z * std::nearbyint(d.z / L.z);
    max_err = std::max(max_err, d.norm());
  }
  EXPECT_LT(max_err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MdParallelEquivalence,
                         ::testing::Values(2, 4, 8));

TEST(MdEngine, ThermostatPullsTowardTarget) {
  MdConfig cfg = small_config();
  cfg.temperature = 600.0;
  cfg.thermostat_rate = 0.5;
  TestRig rig(cfg, 1);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    // Kill most kinetic energy, thermostat should restore it.
    auto& lnl = engine.lattice();
    for (std::size_t idx : lnl.owned_indices()) lnl.entry(idx).v *= 0.2;
    const double t_cold = engine.temperature(comm);
    engine.run(comm, 40);
    const double t_warm = engine.temperature(comm);
    EXPECT_GT(t_warm, t_cold * 1.5);
  });
}

TEST(MdEngine, TimersAccumulate) {
  MdConfig cfg = small_config();
  TestRig rig(cfg, 2);
  comm::World world(2);
  world.run([&](comm::Comm& comm) {
    MdEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank());
    engine.initialize(comm);
    engine.run(comm, 3);
    EXPECT_GT(engine.computation_seconds(), 0.0);
    EXPECT_GT(engine.communication_seconds(), 0.0);
  });
}

TEST(MdSetup, ThrowsForImpossibleDecomposition) {
  MdConfig cfg = small_config();
  cfg.nx = cfg.ny = cfg.nz = 4;
  EXPECT_THROW(MdSetup(cfg, 64), std::invalid_argument);
}

}  // namespace
}  // namespace mmd::md
