#include <gtest/gtest.h>

#include <cmath>

#include "kmc/engine.h"
#include "kmc/slave_rates.h"

namespace mmd::kmc {
namespace {

struct Rig {
  KmcConfig cfg;
  KmcSetup setup;
  pot::EamTableSet tables;

  explicit Rig(int nranks, bool alloy = false)
      : cfg(make_cfg()),
        setup(cfg, nranks),
        tables(pot::EamTableSet::build(
            alloy ? pot::EamModel::iron_copper(cfg.lattice_constant, cfg.cutoff)
                  : pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff),
            cfg.table_segments)) {}

  static KmcConfig make_cfg() {
    KmcConfig c;
    c.nx = c.ny = c.nz = 10;
    c.table_segments = 500;
    c.dt_scale = 2.0;
    return c;
  }
};

TEST(SlaveRates, BatchMatchesMasterPath) {
  Rig rig(1);
  KmcModel model(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables, 0);
  // A few vacancies, including a pair (nonzero dE) and a border one.
  for (std::int64_t gid : {std::int64_t{842}, std::int64_t{843},
                           std::int64_t{0}, std::int64_t{1501}}) {
    model.set_state_global(gid, SiteState::Vacancy);
  }
  // Candidates: every vacancy's occupied 1NN.
  std::vector<EventCandidate> candidates;
  const auto& box = model.box();
  for (std::size_t idx : model.owned_indices()) {
    if (model.state(idx) != SiteState::Vacancy) continue;
    const auto c = box.coord_of(idx);
    for (const auto& o : model.nn_offsets(c.sub)) {
      const lat::LocalCoord n{c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub};
      if (!box.in_storage(n)) continue;
      const std::size_t ni = box.entry_index(n);
      if (is_atom(model.state(ni))) candidates.push_back({idx, ni});
    }
  }
  ASSERT_GT(candidates.size(), 20u);

  sw::SlaveCorePool pool(8);
  SlaveRateCompute kernel(rig.tables, pool);
  const auto batch = kernel.exchange_dE_batch(model, candidates);
  ASSERT_EQ(batch.size(), candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double direct = model.exchange_dE(candidates[i].vac, candidates[i].nb);
    ASSERT_NEAR(batch[i], direct, 1e-12) << i;
  }
}

TEST(SlaveRates, AlloyCandidatesMatch) {
  Rig rig(1, /*alloy=*/true);
  KmcModel model(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables, 0);
  model.set_state_global(842, SiteState::Vacancy);
  // Put Cu on several neighbors so mixed-pair fallbacks exercise.
  for (std::int64_t gid : {std::int64_t{843}, std::int64_t{844},
                           std::int64_t{1042}}) {
    model.set_state_global(gid, SiteState::Cu);
  }
  std::vector<EventCandidate> candidates;
  const auto& box = model.box();
  for (std::size_t idx : model.owned_indices()) {
    if (model.state(idx) != SiteState::Vacancy) continue;
    const auto c = box.coord_of(idx);
    for (const auto& o : model.nn_offsets(c.sub)) {
      const std::size_t ni =
          box.entry_index({c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub});
      if (is_atom(model.state(ni))) candidates.push_back({idx, ni});
    }
  }
  sw::SlaveCorePool pool(4);
  SlaveRateCompute kernel(rig.tables, pool);
  const auto batch = kernel.exchange_dE_batch(model, candidates);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ASSERT_NEAR(batch[i],
                model.exchange_dE(candidates[i].vac, candidates[i].nb), 1e-12);
  }
}

TEST(SlaveRates, EngineRunsIdenticallyWithKernel) {
  Rig rig(2);
  auto run = [&](bool slave) {
    std::vector<std::int64_t> result;
    std::mutex m;
    comm::World world(2);
    world.run([&](comm::Comm& comm) {
      KmcEngine engine(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables,
                       comm.rank(), GhostStrategy::OnDemandOneSided);
      sw::SlaveCorePool pool(8);
      SlaveRateCompute kernel(rig.tables, pool);
      if (slave) engine.use_slave_rates(&kernel);
      engine.initialize_random(comm, 0.01);
      engine.run_cycles(comm, 3);
      auto v = engine.gather_vacancies(comm);
      std::lock_guard lk(m);
      if (comm.rank() == 0) result = std::move(v);
    });
    return result;
  };
  const auto master = run(false);
  const auto slave = run(true);
  EXPECT_EQ(master, slave);
  EXPECT_FALSE(master.empty());
}

TEST(SlaveRates, DmaTrafficIsTiny) {
  // One byte per site: the KMC windows are far smaller than MD's packed
  // particles — quantify it.
  Rig rig(1);
  KmcModel model(rig.cfg, rig.setup.geo, rig.setup.dd, rig.tables, 0);
  model.set_state_global(842, SiteState::Vacancy);
  std::vector<EventCandidate> candidates;
  const auto& box = model.box();
  for (std::size_t idx : model.owned_indices()) {
    if (model.state(idx) != SiteState::Vacancy) continue;
    const auto c = box.coord_of(idx);
    for (const auto& o : model.nn_offsets(c.sub)) {
      const std::size_t ni =
          box.entry_index({c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub});
      if (is_atom(model.state(ni))) candidates.push_back({idx, ni});
    }
  }
  sw::SlaveCorePool pool(4);
  SlaveRateCompute kernel(rig.tables, pool);
  kernel.reset_stats();
  kernel.exchange_dE_batch(model, candidates);
  const auto stats = kernel.dma_stats();
  EXPECT_GT(stats.get_ops, 0u);
  // Window + table staging only: well under a MB for 8 candidates.
  EXPECT_LT(stats.get_bytes, (1u << 20));
  // The per-pass split accounts for the whole aggregate: every byte belongs
  // to either the density pass or the pair pass.
  const auto density = kernel.density_dma_stats();
  const auto pair = kernel.pair_dma_stats();
  EXPECT_GT(density.get_bytes, 0u);
  EXPECT_GT(pair.get_bytes, 0u);
  EXPECT_EQ(density.get_bytes + pair.get_bytes, stats.get_bytes);
  EXPECT_EQ(density.get_ops + pair.get_ops, stats.total_ops());
}

}  // namespace
}  // namespace mmd::kmc
