#include <gtest/gtest.h>

#include "perf/scaling_model.h"

namespace mmd::perf {
namespace {

TEST(NetworkModel, BandwidthDegradesWithRanks) {
  NetworkModel net;
  EXPECT_DOUBLE_EQ(net.effective_bandwidth(1), net.bandwidth_bps);
  EXPECT_LT(net.effective_bandwidth(1024), net.effective_bandwidth(16));
}

TEST(NetworkModel, P2pTimeComposition) {
  NetworkModel net{1e-6, 1e9, 0.0};
  EXPECT_NEAR(net.p2p_time(2, 1000, 1), 2e-6 + 1e-6, 1e-12);
}

TEST(NetworkModel, CollectiveGrowsLogarithmically) {
  NetworkModel net;
  EXPECT_DOUBLE_EQ(net.collective_time(1), 0.0);
  EXPECT_NEAR(net.collective_time(1024) / net.collective_time(32), 2.0, 1e-9);
}

TEST(ScalingModel, WeakScalingEfficiencyDecreases) {
  ScalingModel model;
  StepProfile p{0.01, 6, 1 << 20, 1};
  const double t_base = model.step_time(p, 16);
  double prev = t_base;
  for (std::uint64_t n : {64u, 256u, 4096u, 65536u}) {
    const double t = model.step_time(p, n);
    EXPECT_GE(t, prev);  // monotone
    prev = t;
  }
  const double eff = ScalingModel::weak_efficiency(t_base, prev);
  EXPECT_GT(eff, 0.3);
  EXPECT_LT(eff, 1.0);
}

TEST(ScalingModel, StrongScalingShrinksComputeAndSurface) {
  ScalingModel model;
  StepProfile base{1.0, 6, 1 << 24, 1};
  const StepProfile scaled = model.strong_scale(base, 8.0);
  EXPECT_NEAR(scaled.compute_s, 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(static_cast<double>(scaled.p2p_bytes),
              static_cast<double>(base.p2p_bytes) * 0.25, 1e3);
  EXPECT_EQ(scaled.p2p_msgs, base.p2p_msgs);
}

TEST(ScalingModel, StrongScalingEfficiencyBelowOne) {
  ScalingModel model;
  StepProfile base{0.5, 6, 1 << 22, 1};
  const double t1 = model.step_time(base, 64);
  const double t64 = model.step_time(model.strong_scale(base, 64.0), 4096);
  const double speedup = t1 / t64;
  EXPECT_GT(speedup, 1.0);
  EXPECT_LT(ScalingModel::strong_efficiency(speedup, 64.0), 1.0);
}

TEST(ScalingModel, CacheBoostGivesSuperlinearRegion) {
  // Models the paper's Fig. 14 super-linear strong-scaling region (dataset
  // fits in L2 once divided far enough).
  ScalingModel model;
  StepProfile base{1.0, 0, 0, 0};
  const StepProfile boosted = model.strong_scale(base, 4.0, 1.5);
  EXPECT_LT(boosted.compute_s, 0.25);
}

TEST(Calibration, WeakComputeReproducesTarget) {
  const double m_base = 1e-3, m_n = 5e-3, eff = 0.8;
  const double c = ScalingModel::calibrate_weak_compute(m_base, m_n, eff);
  ASSERT_GT(c, 0.0);
  EXPECT_NEAR((c + m_base) / (c + m_n), eff, 1e-12);
}

TEST(Calibration, WeakComputeUnreachableReturnsZero) {
  // Comm does not grow: no compute value can push efficiency below 1.
  EXPECT_DOUBLE_EQ(ScalingModel::calibrate_weak_compute(1e-3, 1e-3, 0.8), 0.0);
  EXPECT_DOUBLE_EQ(ScalingModel::calibrate_weak_compute(1e-3, 2e-3, 1.5), 0.0);
}

TEST(Calibration, StrongComputeReproducesTarget) {
  const double m_base = 2e-3, m_n = 1e-3, f = 64.0, s = 26.4;
  const double c = ScalingModel::calibrate_strong_compute(m_base, m_n, f, s);
  ASSERT_GT(c, 0.0);
  EXPECT_NEAR((c + m_base) / (c / f + m_n), s, 1e-9);
}

TEST(Calibration, StrongComputeWithCacheBoost) {
  const double m_base = 2e-3, m_n = 1e-3, f = 32.0, s = 18.5, boost = 1.25;
  const double c =
      ScalingModel::calibrate_strong_compute(m_base, m_n, f, s, boost);
  ASSERT_GT(c, 0.0);
  EXPECT_NEAR((c + m_base) / (c / (f * boost) + m_n), s, 1e-9);
}

TEST(Calibration, StrongSuperIdealTargetRejected) {
  // speedup >= f * boost cannot be produced by any finite compute time.
  EXPECT_DOUBLE_EQ(
      ScalingModel::calibrate_strong_compute(1e-3, 1e-3, 8.0, 9.0), 0.0);
}

TEST(CoreAccounting, MasterPlusSlaveCores) {
  EXPECT_EQ(kCoresPerGroup, 65u);
  EXPECT_EQ(ranks_from_cores(6240000), 96000u);
  EXPECT_EQ(cores_from_ranks(1600), 104000u);
  EXPECT_EQ(ranks_from_cores(6656000), 102400u);
}

}  // namespace
}  // namespace mmd::perf
