#include <gtest/gtest.h>

#include <cmath>

#include "potential/eam.h"

namespace mmd::pot {
namespace {

constexpr double kA = 2.855;
constexpr double kCut = 5.0;

TEST(EamModel, IronBasicProperties) {
  const EamModel fe = EamModel::iron(kA, kCut);
  EXPECT_EQ(fe.num_species(), 1);
  EXPECT_DOUBLE_EQ(fe.cutoff(), kCut);
  // Pair potential has its minimum near the 1NN distance.
  const double r0 = fe.species(0).r0;
  EXPECT_NEAR(fe.dphi(0, 0, r0), 0.0, 1e-9);
  EXPECT_LT(fe.phi(0, 0, r0), 0.0);
  // Repulsive wall at short range.
  EXPECT_GT(fe.phi(0, 0, 1.5), 0.0);
  EXPECT_LT(fe.dphi(0, 0, 1.5), 0.0);
}

TEST(EamModel, SmoothCutoff) {
  const EamModel fe = EamModel::iron(kA, kCut);
  EXPECT_DOUBLE_EQ(fe.phi(0, 0, kCut), 0.0);
  EXPECT_DOUBLE_EQ(fe.f(0, 0, kCut), 0.0);
  EXPECT_DOUBLE_EQ(fe.dphi(0, 0, kCut), 0.0);
  EXPECT_NEAR(fe.phi(0, 0, kCut - 1e-6), 0.0, 1e-9);
}

TEST(EamModel, PairDerivativeMatchesFiniteDifference) {
  const EamModel fe = EamModel::iron(kA, kCut);
  const double eps = 1e-7;
  for (double r = 1.5; r < 4.9; r += 0.2) {
    const double fd = (fe.phi(0, 0, r + eps) - fe.phi(0, 0, r - eps)) / (2 * eps);
    ASSERT_NEAR(fe.dphi(0, 0, r), fd, 1e-5) << r;
    const double fdf = (fe.f(0, 0, r + eps) - fe.f(0, 0, r - eps)) / (2 * eps);
    ASSERT_NEAR(fe.df(0, 0, r), fdf, 1e-5) << r;
  }
}

TEST(EamModel, EmbeddingDerivative) {
  const EamModel fe = EamModel::iron(kA, kCut);
  const double rho_e = fe.species(0).rho_e;
  const double eps = 1e-7;
  for (double rho = 0.1 * rho_e; rho < 1.8 * rho_e; rho += 0.1 * rho_e) {
    const double fd =
        (fe.embed(0, rho + eps) - fe.embed(0, rho - eps)) / (2 * eps);
    ASSERT_NEAR(fe.dembed(0, rho), fd, 1e-5) << rho;
  }
  // Finite at rho -> 0 (quadratic extension).
  EXPECT_TRUE(std::isfinite(fe.dembed(0, 0.0)));
  EXPECT_TRUE(std::isfinite(fe.embed(0, 0.0)));
  EXPECT_NEAR(fe.embed(0, 0.0), 0.0, 1e-12);
}

TEST(EamModel, EmbeddingContinuousAtSplice) {
  const EamModel fe = EamModel::iron(kA, kCut);
  const double rho_min = 1e-3 * fe.species(0).rho_e;
  EXPECT_NEAR(fe.embed(0, rho_min * (1 - 1e-9)), fe.embed(0, rho_min * (1 + 1e-9)),
              1e-9);
  EXPECT_NEAR(fe.dembed(0, rho_min * (1 - 1e-9)),
              fe.dembed(0, rho_min * (1 + 1e-9)), 1e-6);
}

TEST(EamModel, CalibratedPerfectRho) {
  const EamModel fe = EamModel::iron(kA, kCut);
  // rho_e is calibrated to the perfect-BCC host density.
  EXPECT_NEAR(fe.species(0).rho_e, fe.perfect_rho(0, kA), 1e-12);
  EXPECT_GT(fe.species(0).rho_e, 1.0);
  // Perfect-lattice embedding is exactly -E_emb.
  EXPECT_NEAR(fe.embed(0, fe.perfect_rho(0, kA)), -fe.species(0).emb_E, 1e-12);
}

TEST(EamModel, IronCopperAlloyIsSymmetric) {
  const EamModel alloy = EamModel::iron_copper(kA, kCut);
  EXPECT_EQ(alloy.num_species(), 2);
  for (double r = 2.0; r < 4.5; r += 0.31) {
    EXPECT_DOUBLE_EQ(alloy.phi(0, 1, r), alloy.phi(1, 0, r));
    EXPECT_DOUBLE_EQ(alloy.f(0, 1, r), alloy.f(1, 0, r));
  }
  // Cross interaction differs from both pures.
  EXPECT_NE(alloy.phi(0, 1, 2.5), alloy.phi(0, 0, 2.5));
  EXPECT_NE(alloy.phi(0, 1, 2.5), alloy.phi(1, 1, 2.5));
}

TEST(EamTableSet, IronHasThreeTables) {
  const EamModel fe = EamModel::iron(kA, kCut);
  const EamTableSet t = EamTableSet::build(fe, 5000);
  EXPECT_EQ(t.num_species, 1);
  EXPECT_EQ(t.pairs.size(), 1u);
  EXPECT_EQ(t.embed.size(), 1u);
  // Table sizes match the paper: each compact table ~39 KB, traditional 273 KB.
  EXPECT_LT(t.phi(0, 0).bytes(), 40u * 1024u);
  EXPECT_GT(t.phi_trad.bytes(), 64u * 1024u);
}

TEST(EamTableSet, TablesMatchAnalyticModel) {
  const EamModel fe = EamModel::iron(kA, kCut);
  const EamTableSet t = EamTableSet::build(fe, 5000);
  for (double r = 1.2; r < 5.0; r += 0.0531) {
    ASSERT_NEAR(t.phi(0, 0).value(r), fe.phi(0, 0, r), 1e-8) << r;
    ASSERT_NEAR(t.f(0, 0).value(r), fe.f(0, 0, r), 1e-8) << r;
    ASSERT_NEAR(t.phi(0, 0).derivative(r), fe.dphi(0, 0, r), 1e-6) << r;
  }
  const double rho_e = fe.species(0).rho_e;
  for (double rho = 0.05 * rho_e; rho < 1.9 * rho_e; rho += 0.07 * rho_e) {
    ASSERT_NEAR(t.embed_of(0).value(rho), fe.embed(0, rho), 1e-8) << rho;
  }
}

TEST(EamTableSet, AlloyHasEightTables) {
  // Paper §2.1.2: Fe-Cu needs pair+density for Fe-Fe, Cu-Cu, Fe-Cu plus two
  // embedding tables; their combined compact size exceeds the 64 KB store.
  const EamModel alloy = EamModel::iron_copper(kA, kCut);
  const EamTableSet t = EamTableSet::build(alloy, 5000);
  EXPECT_EQ(t.pairs.size(), 3u);
  EXPECT_EQ(t.embed.size(), 2u);
  EXPECT_GT(t.compact_bytes(), 64u * 1024u);
  EXPECT_EQ(t.pair_index(0, 1), t.pair_index(1, 0));
}

TEST(EamTableSet, TraditionalFormsAgreeWithCompact) {
  const EamModel fe = EamModel::iron(kA, kCut);
  const EamTableSet t = EamTableSet::build(fe, 2000);
  for (double r = 1.1; r < 5.0; r += 0.077) {
    ASSERT_NEAR(t.phi_trad.value(r), t.phi(0, 0).value(r), 1e-12);
    ASSERT_NEAR(t.f_trad.derivative(r), t.f(0, 0).derivative(r), 1e-10);
  }
}

}  // namespace
}  // namespace mmd::pot
