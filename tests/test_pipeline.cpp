// The stage-pipeline refactor contract:
//   - the default pipeline (MdCascadeStage -> KmcStage) is behavior-
//     preserving: a frozen in-test copy of the pre-refactor monolithic
//     Simulation::run() body (the "legacy oracle") must produce bit-identical
//     physics across ghost strategies, rank counts, and the alloy path,
//   - the MD->KMC handoff is one core::HandoffState capture/apply pair,
//   - sampled mode (SamplingScheduler + kmc::ScdStage) checkpoints and
//     resumes bit-identically mid-schedule, estimates are rank-count
//     independent, and the detailed work it executes is a fraction of the
//     all-detailed run's.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "comm/world.h"
#include "core/simulation.h"
#include "core/stage.h"
#include "kmc/clusters.h"
#include "kmc/engine.h"
#include "md/engine.h"
#include "potential/eam.h"
#include "util/rng.h"

namespace mmd {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path d = fs::path(::testing::TempDir()) / ("mmd_pipe_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d.string();
}

core::SimulationConfig tiny_config() {
  core::SimulationConfig cfg;
  cfg.md.nx = cfg.md.ny = cfg.md.nz = 8;
  cfg.md.temperature = 300.0;
  cfg.md.table_segments = 800;
  cfg.kmc_table_segments = 400;
  cfg.md_time_ps = 0.03;
  cfg.pka_count = 2;
  cfg.pka_energy_ev = 70.0;
  cfg.kmc_cycles = 6;
  cfg.nranks = 1;
  return cfg;
}

/// What the legacy oracle produces (the physics fields of SimulationReport;
/// wall times are the one legitimate difference between two runs).
struct LegacyReport {
  md::DefectSummary md_defects;
  kmc::ClusterStats clusters_after_md;
  kmc::ClusterStats clusters_after_kmc;
  std::uint64_t kmc_events = 0;
  double kmc_mc_time = 0.0;
  double vacancy_concentration = 0.0;
  double real_time_days = 0.0;
  std::vector<std::int64_t> final_vacancies;
};

kmc::KmcConfig kmc_config_from(const core::SimulationConfig& cfg) {
  kmc::KmcConfig k;
  k.nx = cfg.md.nx;
  k.ny = cfg.md.ny;
  k.nz = cfg.md.nz;
  k.lattice_constant = cfg.md.lattice_constant;
  k.cutoff = cfg.md.cutoff;
  k.temperature = cfg.md.temperature;
  k.seed = cfg.md.seed;
  k.dt_scale = cfg.kmc_dt_scale;
  k.table_segments = cfg.kmc_table_segments;
  k.incremental = cfg.kmc_incremental;
  k.debug_events = cfg.kmc_debug_events;
  return k;
}

/// Frozen copy of the pre-refactor Simulation::run() body (fresh-run path,
/// no checkpointing): the runtime oracle the refactored pipeline is compared
/// against. Deliberately NOT sharing stage code with the production path.
LegacyReport legacy_run(const core::SimulationConfig& cfg) {
  const auto assets = core::Simulation::build_assets(cfg);
  const md::MdSetup md_setup(cfg.md, cfg.nranks);
  const kmc::KmcConfig kmc_cfg = kmc_config_from(cfg);
  const kmc::KmcSetup kmc_setup(kmc_cfg, cfg.nranks);

  LegacyReport report;
  std::mutex report_mutex;
  comm::World world(cfg.nranks);
  world.run([&](comm::Comm& comm) {
    md::MdEngine md_engine(cfg.md, md_setup.geo, md_setup.dd,
                           *assets.md_tables, comm.rank());
    kmc::KmcEngine kmc_engine(kmc_cfg, kmc_setup.geo, kmc_setup.dd,
                              *assets.kmc_tables, comm.rank(),
                              cfg.kmc_strategy);

    // --- MD stage: cascade-collision defect generation ---
    md_engine.initialize(comm);
    if (cfg.solute_fraction > 0.0) {
      md_engine.seed_solutes(comm, cfg.solute_fraction);
    }
    util::Rng rng(cfg.md.seed ^ 0x7a3d5e9bull);
    for (int p = 0; p < cfg.pka_count; ++p) {
      const auto site = static_cast<std::int64_t>(rng.uniform_index(
          static_cast<std::uint64_t>(md_setup.geo.num_sites())));
      md_engine.inject_pka(comm, site, rng.unit_vector(), cfg.pka_energy_ev);
    }
    md_engine.run_for(comm, cfg.md_time_ps);
    const auto defects = md_engine.defects(comm);

    // --- handoff ---
    std::vector<std::int64_t> vac_sites;
    for (const auto& v : md_engine.vacancies()) {
      vac_sites.push_back(v.site_rank);
    }

    // --- KMC stage ---
    if (cfg.solute_fraction > 0.0) {
      auto& lnl = md_engine.lattice();
      for (std::size_t idx : lnl.owned_indices()) {
        const lat::AtomEntry& e = lnl.entry(idx);
        if (e.is_atom() && e.type == lat::Species::Cu) {
          kmc_engine.model().set_state_global(lnl.site_rank(idx),
                                              kmc::SiteState::Cu);
        }
      }
      lnl.for_each_owned_runaway([&](std::int32_t ri, std::size_t) {
        const lat::RunawayAtom& a = lnl.runaway(ri);
        if (a.type == lat::Species::Cu) {
          const std::size_t host = lnl.nearest_owned_entry(a.r);
          kmc_engine.model().set_state_global(lnl.site_rank(host),
                                              kmc::SiteState::Cu);
        }
      });
    }
    kmc_engine.initialize_sites(comm, vac_sites);
    const auto before = kmc_engine.gather_vacancies(comm);
    kmc_engine.run_cycles(comm, cfg.kmc_cycles);
    const auto after = kmc_engine.gather_vacancies(comm);
    const double c_mc = kmc_engine.vacancy_concentration(comm);
    const std::uint64_t events =
        comm.allreduce_sum_u64(kmc_engine.stats().events);

    if (comm.rank() == 0) {
      std::lock_guard lk(report_mutex);
      report.md_defects = defects;
      report.clusters_after_md = kmc::cluster_vacancies(kmc_setup.geo, before);
      report.clusters_after_kmc = kmc::cluster_vacancies(kmc_setup.geo, after);
      report.kmc_events = events;
      report.kmc_mc_time = kmc_engine.mc_time();
      report.vacancy_concentration = c_mc;
      report.real_time_days =
          kmc::real_time_scale(kmc_engine.mc_time(), c_mc,
                               kmc_cfg.temperature) /
          86400.0;
      report.final_vacancies = after;
    }
  });
  return report;
}

/// Bit identity: every physics field compares with ==, doubles included.
void expect_matches_oracle(const LegacyReport& a,
                           const core::SimulationReport& b) {
  EXPECT_EQ(a.md_defects.atoms, b.md_defects.atoms);
  EXPECT_EQ(a.md_defects.vacancies, b.md_defects.vacancies);
  EXPECT_EQ(a.md_defects.interstitials, b.md_defects.interstitials);
  EXPECT_EQ(a.kmc_events, b.kmc_events);
  EXPECT_EQ(a.kmc_mc_time, b.kmc_mc_time);
  EXPECT_EQ(a.vacancy_concentration, b.vacancy_concentration);
  EXPECT_EQ(a.real_time_days, b.real_time_days);
  EXPECT_EQ(a.clusters_after_md.num_vacancies,
            b.clusters_after_md.num_vacancies);
  EXPECT_EQ(a.clusters_after_md.num_clusters,
            b.clusters_after_md.num_clusters);
  EXPECT_EQ(a.clusters_after_md.mean_size, b.clusters_after_md.mean_size);
  EXPECT_EQ(a.clusters_after_md.max_size, b.clusters_after_md.max_size);
  EXPECT_EQ(a.clusters_after_kmc.num_vacancies,
            b.clusters_after_kmc.num_vacancies);
  EXPECT_EQ(a.clusters_after_kmc.num_clusters,
            b.clusters_after_kmc.num_clusters);
  EXPECT_EQ(a.clusters_after_kmc.mean_size, b.clusters_after_kmc.mean_size);
  EXPECT_EQ(a.clusters_after_kmc.max_size, b.clusters_after_kmc.max_size);
  EXPECT_EQ(a.final_vacancies, b.final_vacancies);
}

// ---------------------------------------------------------------------------

TEST(PipelineEquivalence, DefaultPipelineMatchesLegacyOracleSerial) {
  const auto cfg = tiny_config();
  expect_matches_oracle(legacy_run(cfg), core::Simulation(cfg).run());
}

TEST(PipelineEquivalence, DefaultPipelineMatchesLegacyOracleParallel) {
  auto cfg = tiny_config();
  cfg.nranks = 4;
  expect_matches_oracle(legacy_run(cfg), core::Simulation(cfg).run());
}

TEST(PipelineEquivalence, DefaultPipelineMatchesLegacyOracleAllStrategies) {
  for (const auto strategy :
       {kmc::GhostStrategy::Traditional, kmc::GhostStrategy::OnDemandTwoSided,
        kmc::GhostStrategy::OnDemandOneSided}) {
    auto cfg = tiny_config();
    // Traditional ghosts need >= 5 cells per axis per rank.
    cfg.md.nx = cfg.md.ny = cfg.md.nz = 10;
    cfg.nranks = 2;
    cfg.kmc_strategy = strategy;
    expect_matches_oracle(legacy_run(cfg), core::Simulation(cfg).run());
  }
}

TEST(PipelineEquivalence, DefaultPipelineMatchesLegacyOracleAlloy) {
  auto cfg = tiny_config();
  cfg.nranks = 2;
  cfg.solute_fraction = 0.08;
  expect_matches_oracle(legacy_run(cfg), core::Simulation(cfg).run());
}

TEST(PipelineEquivalence, DefaultReportHasNoSampledLines) {
  const auto r = core::Simulation(tiny_config()).run();
  EXPECT_EQ(r.sampled.windows, 0u);
  EXPECT_EQ(core::to_string(r).find("Sampled mode"), std::string::npos);
}

// ---------------------------------------------------------------------------

TEST(HandoffState, CaptureMatchesEngineCensusAndAppliesToKmc) {
  auto cfg = tiny_config();
  cfg.solute_fraction = 0.08;
  const auto assets = core::Simulation::build_assets(cfg);
  const md::MdSetup md_setup(cfg.md, 1);
  const kmc::KmcConfig kmc_cfg = kmc_config_from(cfg);
  const kmc::KmcSetup kmc_setup(kmc_cfg, 1);

  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    md::MdEngine md_engine(cfg.md, md_setup.geo, md_setup.dd,
                           *assets.md_tables, comm.rank());
    md_engine.initialize(comm);
    md_engine.seed_solutes(comm, cfg.solute_fraction);
    util::Rng rng(cfg.md.seed ^ 0x7a3d5e9bull);
    md_engine.inject_pka(comm, 64, rng.unit_vector(), cfg.pka_energy_ev);
    md_engine.run_for(comm, cfg.md_time_ps);

    const auto handoff = core::HandoffState::capture(md_engine);

    // The captured vacancies are exactly the engine's census, in order.
    std::vector<std::int64_t> expected;
    for (const auto& v : md_engine.vacancies()) {
      expected.push_back(v.site_rank);
    }
    ASSERT_FALSE(expected.empty());
    EXPECT_EQ(handoff.vacancy_sites, expected);
    // The alloy arrangement was captured too.
    EXPECT_FALSE(handoff.solute_sites.empty());

    // apply() reproduces the handoff on a KMC model: every captured vacancy
    // site is a vacancy, every captured solute site is Cu (a site can be
    // both captured as solute host and later vacated — vacancy wins).
    kmc::KmcEngine kmc_engine(kmc_cfg, kmc_setup.geo, kmc_setup.dd,
                              *assets.kmc_tables, comm.rank(),
                              cfg.kmc_strategy);
    handoff.apply(comm, kmc_engine);
    const auto vacancies = kmc_engine.gather_vacancies(comm);
    EXPECT_EQ(vacancies.size(), expected.size());
    for (const std::int64_t gid : vacancies) {
      EXPECT_TRUE(std::find(expected.begin(), expected.end(), gid) !=
                  expected.end());
    }
  });
}

// ---------------------------------------------------------------------------

core::SimulationConfig sampled_config() {
  auto cfg = tiny_config();
  cfg.nranks = 2;
  cfg.kmc_cycles = 32;  // schedule: 4+12+4+12 = two windows, two strides
  cfg.sampling.mode = core::SamplingPolicy::Mode::Scd;
  cfg.sampling.window = 4;
  cfg.sampling.stride = 12;
  cfg.sampling.replicates = 6;
  return cfg;
}

TEST(SampledMode, ReportCarriesWindowsAndConfidenceInterval) {
  const auto r = core::Simulation(sampled_config()).run();
  EXPECT_EQ(r.sampled.windows, 2u);
  EXPECT_EQ(r.sampled.replicates, 6);
  EXPECT_GT(r.sampled.est_clusters, 0.0);
  EXPECT_GE(r.sampled.ci_halfwidth, 0.0);
  // The SCD clock extended the MC time beyond what the detailed engine ran.
  EXPECT_GT(r.kmc_mc_time, 0.0);
  const std::string s = core::to_string(r);
  EXPECT_NE(s.find("Sampled mode"), std::string::npos);
  EXPECT_NE(s.find("2 windows"), std::string::npos);
}

TEST(SampledMode, EstimatesIndependentOfRankCount) {
  auto serial = sampled_config();
  serial.nranks = 1;
  const auto rs = core::Simulation(serial).run();
  const auto rp = core::Simulation(sampled_config()).run();
  // The detailed windows are rank-count invariant (synchronous sublattice
  // with a fixed seed), the census is a global gather, and the replicate RNG
  // streams are keyed by (seed, window, replicate) only.
  EXPECT_EQ(rs.sampled.windows, rp.sampled.windows);
  EXPECT_EQ(rs.sampled.est_clusters, rp.sampled.est_clusters);
  EXPECT_EQ(rs.sampled.ci_halfwidth, rp.sampled.ci_halfwidth);
}

TEST(SampledMode, ExecutesFarFewerDetailedEventsThanAllDetailed) {
  auto detailed = sampled_config();
  detailed.sampling.mode = core::SamplingPolicy::Mode::Off;
  const auto rd = core::Simulation(detailed).run();
  const auto rs = core::Simulation(sampled_config()).run();
  // 8 of 32 cycles are detailed, so the sampled run must execute well under
  // half the detailed events (generous bound; the wall-clock >=5x claim is
  // pinned by BENCH_sampled_campaign against its committed baseline).
  EXPECT_GT(rd.kmc_events, 0u);
  EXPECT_LT(rs.kmc_events * 2, rd.kmc_events + 1);
  // Both runs cover the same MC-time target order: the sampled clock is the
  // detailed prefix plus the SCD strides.
  EXPECT_GT(rs.kmc_mc_time, 0.0);
}

TEST(SampledMode, ResumesMidScheduleBitIdentically) {
  const std::string dir = fresh_dir("sampled_resume");

  // Uninterrupted sampled run: the reference.
  const auto full = core::Simulation(sampled_config()).run();

  // "Killed" run: first window + first stride only (16 of 32 coarse cycles),
  // checkpointing at every 4 detailed cycles.
  auto half = sampled_config();
  half.kmc_cycles = 16;
  half.checkpoint_dir = dir;
  half.checkpoint_every = 4;
  const auto killed = core::Simulation(half).run();
  EXPECT_FALSE(killed.resumed);
  EXPECT_EQ(killed.sampled.windows, 1u);

  // Resume and finish the full schedule.
  auto rest = sampled_config();
  rest.checkpoint_dir = dir;
  rest.checkpoint_every = 4;
  rest.resume = true;
  const auto resumed = core::Simulation(rest).run();
  EXPECT_TRUE(resumed.resumed);

  EXPECT_EQ(full.sampled.windows, resumed.sampled.windows);
  EXPECT_EQ(full.sampled.est_clusters, resumed.sampled.est_clusters);
  EXPECT_EQ(full.sampled.ci_halfwidth, resumed.sampled.ci_halfwidth);
  EXPECT_EQ(full.kmc_events, resumed.kmc_events);
  EXPECT_EQ(full.kmc_mc_time, resumed.kmc_mc_time);
  EXPECT_EQ(full.final_vacancies, resumed.final_vacancies);
  EXPECT_EQ(full.vacancy_concentration, resumed.vacancy_concentration);
  fs::remove_all(dir);
}

TEST(SampledMode, DetailedCheckpointRejectedUnderSampledSchedule) {
  const std::string dir = fresh_dir("sampled_stage_tag");

  // A default-pipeline checkpoint...
  auto detailed = tiny_config();
  detailed.nranks = 2;
  detailed.kmc_cycles = 4;
  detailed.checkpoint_dir = dir;
  detailed.checkpoint_every = 4;
  core::Simulation(detailed).run();

  // ...must not be adopted by a sampled-schedule resume: the stage tag
  // mismatch falls back to a fresh run instead of mispositioning the
  // scheduler.
  auto sampled = sampled_config();
  sampled.checkpoint_dir = dir;
  sampled.checkpoint_every = 4;
  sampled.resume = true;
  const auto r = core::Simulation(sampled).run();
  EXPECT_FALSE(r.resumed);
  EXPECT_EQ(r.sampled.windows, 2u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mmd
