#include <gtest/gtest.h>

#include <mutex>
#include <utility>
#include <vector>

#include "kmc/engine.h"
#include "telemetry/session.h"

namespace mmd::kmc {
namespace {

KmcConfig engine_config() {
  KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 10;
  cfg.table_segments = 500;
  cfg.dt_scale = 2.0;  // a few events per vacancy per cycle
  return cfg;
}

struct Rig {
  KmcConfig cfg;
  KmcSetup setup;
  pot::EamTableSet tables;

  Rig(const KmcConfig& c, int nranks)
      : cfg(c),
        setup(c, nranks),
        tables(pot::EamTableSet::build(
            pot::EamModel::iron(c.lattice_constant, c.cutoff), c.table_segments)) {}
};

/// Run a short KMC and return the sorted global vacancy list (rank 0 view).
std::vector<std::int64_t> run_kmc(const KmcConfig& cfg, int nranks,
                                  GhostStrategy strategy, double concentration,
                                  int cycles, std::uint64_t* events = nullptr,
                                  GhostTraffic* traffic = nullptr) {
  Rig rig(cfg, nranks);
  std::vector<std::int64_t> result;
  std::uint64_t total_events = 0;
  GhostTraffic total_traffic;
  std::mutex m;
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    KmcEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank(),
                     strategy);
    engine.initialize_random(comm, concentration);
    engine.run_cycles(comm, cycles);
    auto vacs = engine.gather_vacancies(comm);
    const auto ev = comm.allreduce_sum_u64(engine.stats().events);
    std::lock_guard lk(m);
    total_traffic += engine.ghost_comm().traffic();
    if (comm.rank() == 0) {
      result = std::move(vacs);
      total_events = ev;
    }
  });
  if (events != nullptr) *events = total_events;
  if (traffic != nullptr) *traffic = total_traffic;
  return result;
}

TEST(KmcEngine, VacancyCountConservedSerial) {
  const KmcConfig cfg = engine_config();
  std::uint64_t events = 0;
  const auto vacs = run_kmc(cfg, 1, GhostStrategy::Traditional, 0.01, 5, &events);
  // Initialization is Bernoulli per site; count must stay fixed under hops.
  const auto initial = run_kmc(cfg, 1, GhostStrategy::Traditional, 0.01, 0);
  EXPECT_EQ(vacs.size(), initial.size());
  EXPECT_GT(events, 0u);
}

class KmcRanks : public ::testing::TestWithParam<int> {};

TEST_P(KmcRanks, VacancyCountConservedParallel) {
  const int nranks = GetParam();
  const KmcConfig cfg = engine_config();
  const auto before = run_kmc(cfg, nranks, GhostStrategy::OnDemandOneSided, 0.01, 0);
  const auto after = run_kmc(cfg, nranks, GhostStrategy::OnDemandOneSided, 0.01, 4);
  EXPECT_EQ(before.size(), after.size());
}

TEST_P(KmcRanks, InitializationIndependentOfDecomposition) {
  const KmcConfig cfg = engine_config();
  const auto serial = run_kmc(cfg, 1, GhostStrategy::Traditional, 0.02, 0);
  const auto parallel = run_kmc(cfg, GetParam(), GhostStrategy::Traditional, 0.02, 0);
  EXPECT_EQ(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, KmcRanks, ::testing::Values(2, 4, 8));

class KmcStrategyEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(KmcStrategyEquivalence, AllStrategiesProduceIdenticalConfigurations) {
  // Same seed, same rank count: the event sequence is deterministic, so the
  // final configuration must be bit-identical under all three ghost
  // strategies. This is the correctness guarantee behind the paper's
  // communication-volume claim: on-demand transfers less but loses nothing.
  const int nranks = GetParam();
  const KmcConfig cfg = engine_config();
  const auto trad =
      run_kmc(cfg, nranks, GhostStrategy::Traditional, 0.01, 4);
  const auto two =
      run_kmc(cfg, nranks, GhostStrategy::OnDemandTwoSided, 0.01, 4);
  const auto one =
      run_kmc(cfg, nranks, GhostStrategy::OnDemandOneSided, 0.01, 4);
  EXPECT_EQ(trad, two);
  EXPECT_EQ(trad, one);
  EXPECT_FALSE(trad.empty());
}

INSTANTIATE_TEST_SUITE_P(RankCounts, KmcStrategyEquivalence,
                         ::testing::Values(1, 2, 4, 8));

TEST(KmcEngine, OnDemandSendsFarLessThanTraditional) {
  // The paper's Fig. 12: with a low vacancy concentration the on-demand
  // volume is a small fraction of the traditional full-shell exchange. Needs
  // a box that is large relative to the halo, or every site is boundary.
  KmcConfig cfg = engine_config();
  cfg.nx = cfg.ny = cfg.nz = 20;
  GhostTraffic trad, ondemand;
  run_kmc(cfg, 4, GhostStrategy::Traditional, 0.002, 3, nullptr, &trad);
  run_kmc(cfg, 4, GhostStrategy::OnDemandOneSided, 0.002, 3, nullptr, &ondemand);
  EXPECT_GT(trad.bytes_sent, 0u);
  EXPECT_LT(ondemand.bytes_sent, trad.bytes_sent / 5);
}

TEST(KmcEngine, TwoSidedSendsEmptyHandshakes) {
  const KmcConfig cfg = engine_config();
  GhostTraffic two, one;
  // Zero vacancies: no updates at all.
  run_kmc(cfg, 4, GhostStrategy::OnDemandTwoSided, 0.0, 2, nullptr, &two);
  run_kmc(cfg, 4, GhostStrategy::OnDemandOneSided, 0.0, 2, nullptr, &one);
  // Two-sided must still send (empty) messages every sector; one-sided none
  // beyond the initial full refresh.
  EXPECT_GT(two.messages_sent, one.messages_sent);
  EXPECT_EQ(two.bytes_sent, one.bytes_sent);  // both moved zero update bytes
}

TEST(KmcEngine, McTimeAdvances) {
  const KmcConfig cfg = engine_config();
  Rig rig(cfg, 1);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    KmcEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank(),
                     GhostStrategy::OnDemandOneSided);
    engine.initialize_random(comm, 0.01);
    EXPECT_DOUBLE_EQ(engine.mc_time(), 0.0);
    engine.run_cycles(comm, 3);
    EXPECT_GT(engine.mc_time(), 0.0);
    EXPECT_EQ(engine.stats().cycles, 3u);
  });
}

TEST(KmcEngine, RunToThresholdStops) {
  KmcConfig cfg = engine_config();
  cfg.nx = cfg.ny = cfg.nz = 8;
  Rig rig(cfg, 1);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    KmcEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank(),
                     GhostStrategy::OnDemandOneSided);
    engine.initialize_random(comm, 0.02);
    // Pick a threshold a few cycles away given the analytic rate bound.
    engine.run_cycles(comm, 1);
    const double dt1 = engine.mc_time();
    ASSERT_GT(dt1, 0.0);
    // Set the internal threshold via config copy: run until 3x the first dt.
    while (engine.mc_time() < 3.0 * dt1) engine.run_cycles(comm, 1);
    EXPECT_GE(engine.mc_time(), 3.0 * dt1);
  });
}

TEST(KmcEngine, InitializeFromMdSites) {
  const KmcConfig cfg = engine_config();
  Rig rig(cfg, 2);
  comm::World world(2);
  world.run([&](comm::Comm& comm) {
    KmcEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank(),
                     GhostStrategy::Traditional);
    // Vacancies at three chosen sites, assigned to whichever rank owns them.
    std::vector<std::int64_t> sites;
    for (std::int64_t gid : {std::int64_t{0}, std::int64_t{777}, std::int64_t{1500}}) {
      // initialize_sites applies via set_state_global: pass to both ranks;
      // only images present locally take effect, so filter by ownership.
      std::vector<std::size_t> images;
      engine.model().images_of_global(gid, images);
      for (std::size_t i : images) {
        if (engine.model().is_owned(i)) {
          sites.push_back(gid);
          break;
        }
      }
    }
    engine.initialize_sites(comm, sites);
    const auto all = engine.gather_vacancies(comm);
    if (comm.rank() == 0) {
      EXPECT_EQ(all.size(), 3u);
    }
    const double c = engine.vacancy_concentration(comm);
    EXPECT_NEAR(c, 3.0 / static_cast<double>(rig.setup.geo.num_sites()), 1e-12);
  });
}

/// One logged run: per-rank event sequences plus the final configuration.
struct LoggedRun {
  std::vector<std::int64_t> vacancies;  ///< rank-0 gathered, sorted
  std::uint64_t events = 0;
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> logs;
};

LoggedRun run_logged(KmcConfig cfg, int nranks, GhostStrategy strategy,
                     double concentration, int cycles) {
  cfg.record_events = true;
  Rig rig(cfg, nranks);
  LoggedRun out;
  out.logs.resize(static_cast<std::size_t>(nranks));
  std::mutex m;
  comm::World world(nranks);
  world.run([&](comm::Comm& comm) {
    KmcEngine engine(cfg, rig.setup.geo, rig.setup.dd, rig.tables, comm.rank(),
                     strategy);
    engine.initialize_random(comm, concentration);
    engine.run_cycles(comm, cycles);
    auto vacs = engine.gather_vacancies(comm);
    const auto ev = comm.allreduce_sum_u64(engine.stats().events);
    std::lock_guard lk(m);
    out.logs[static_cast<std::size_t>(comm.rank())] = engine.event_log();
    if (comm.rank() == 0) {
      out.vacancies = std::move(vacs);
      out.events = ev;
    }
  });
  return out;
}

class KmcIncrementalEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(KmcIncrementalEquivalence, EventSequenceBitIdenticalToRescanOracle) {
  // The incremental event table must not merely be statistically equivalent
  // to the full-rescan oracle: with a fixed seed, every rank must execute the
  // exact same (vacancy, atom) swap sequence, under every ghost strategy.
  // That is the determinism contract the dirty-region invalidation promises
  // (same leaves -> same tree sums -> same BKL draws and selections).
  const int nranks = GetParam();
  for (GhostStrategy strategy :
       {GhostStrategy::Traditional, GhostStrategy::OnDemandOneSided,
        GhostStrategy::OnDemandTwoSided}) {
    KmcConfig inc = engine_config();
    inc.incremental = true;
    KmcConfig scan = engine_config();
    scan.incremental = false;
    const auto a = run_logged(inc, nranks, strategy, 0.01, 4);
    const auto b = run_logged(scan, nranks, strategy, 0.01, 4);
    ASSERT_GT(a.events, 0u);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.vacancies, b.vacancies);
    for (int r = 0; r < nranks; ++r) {
      EXPECT_EQ(a.logs[static_cast<std::size_t>(r)],
                b.logs[static_cast<std::size_t>(r)])
          << "rank " << r << " strategy " << static_cast<int>(strategy);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, KmcIncrementalEquivalence,
                         ::testing::Values(1, 2, 4));

TEST(KmcEngine, IncrementalRateTelemetryCounters) {
  telemetry::MetricsRegistry::Aggregate agg;
  std::uint64_t events = 0;
  {
    telemetry::Session session(2);
    const KmcConfig cfg = engine_config();
    run_kmc(cfg, 2, GhostStrategy::OnDemandOneSided, 0.01, 4, &events);
    agg = session.metrics().aggregate();
  }
  ASSERT_GT(events, 0u);
  EXPECT_EQ(agg.counter("kmc.events"), events);
  // Debug logging is off by default; every executed event counts as
  // suppressed (satellite: the per-event stderr path is config-gated).
  EXPECT_EQ(agg.counter("kmc.events.debug_suppressed"), events);
  EXPECT_GT(agg.counter("kmc.rates.recomputed"), 0u);
  EXPECT_GT(agg.counter("kmc.rates.reused"), 0u);
  // Each executed event saw the whole active candidate population.
  EXPECT_GE(agg.counter("kmc.events.candidates"), events);
  // The incremental table's raison d'etre: most rates survive an event.
  EXPECT_GT(agg.counter("kmc.rates.reused"),
            agg.counter("kmc.rates.recomputed") / 4);
}

TEST(KmcEngine, RescanOracleReusesNothing) {
  telemetry::MetricsRegistry::Aggregate agg;
  std::uint64_t events = 0;
  {
    telemetry::Session session(1);
    KmcConfig cfg = engine_config();
    cfg.incremental = false;
    run_kmc(cfg, 1, GhostStrategy::OnDemandOneSided, 0.01, 4, &events);
    agg = session.metrics().aggregate();
  }
  ASSERT_GT(events, 0u);
  EXPECT_GT(agg.counter("kmc.rates.recomputed"), 0u);
  EXPECT_EQ(agg.counter("kmc.rates.reused"), 0u);
}

TEST(KmcEngine, VacanciesMoveOverTime) {
  const KmcConfig cfg = engine_config();
  const auto before = run_kmc(cfg, 1, GhostStrategy::OnDemandOneSided, 0.01, 0);
  const auto after = run_kmc(cfg, 1, GhostStrategy::OnDemandOneSided, 0.01, 6);
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace mmd::kmc
