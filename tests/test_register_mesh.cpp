#include <gtest/gtest.h>

#include "potential/eam.h"
#include "potential/sharded_table.h"
#include "sunway/register_mesh.h"

namespace mmd::sw {
namespace {

TEST(RegisterMesh, HopTopology) {
  RegisterMesh mesh;  // 8x8
  EXPECT_EQ(mesh.size(), 64);
  EXPECT_EQ(mesh.hops(0, 0), 0);
  EXPECT_EQ(mesh.hops(0, 7), 1);    // same row
  EXPECT_EQ(mesh.hops(0, 56), 1);   // same column
  EXPECT_EQ(mesh.hops(0, 63), 2);   // row + column
  EXPECT_EQ(mesh.hops(9, 18), 2);
  EXPECT_EQ(mesh.hops(9, 10), 1);
}

TEST(RegisterMesh, RejectsBadCores) {
  RegisterMesh mesh;
  EXPECT_THROW(mesh.hops(-1, 0), std::out_of_range);
  EXPECT_THROW(mesh.hops(0, 64), std::out_of_range);
  EXPECT_THROW(RegisterMesh(0, 8), std::invalid_argument);
}

TEST(RegisterMesh, RemoteGetMovesDataAndCounts) {
  RegisterMesh mesh;
  double src[4] = {1, 2, 3, 4};
  double dst[4] = {};
  mesh.remote_get(5, 61, dst, src, sizeof(src));
  EXPECT_DOUBLE_EQ(dst[3], 4.0);
  EXPECT_EQ(mesh.stats(5).messages, 1u);
  EXPECT_EQ(mesh.stats(5).bytes, sizeof(src));
  EXPECT_EQ(mesh.stats(5).hops, 1u);  // 5 and 61 share column 5
  EXPECT_EQ(mesh.stats(61).messages, 0u);  // one-sided: owner not involved
}

TEST(RegisterMesh, ModeledTimeScalesWithHops) {
  RegisterMesh mesh;
  double buf = 0.0, val = 1.0;
  mesh.remote_get(0, 7, &buf, &val, sizeof(double));   // 1 hop
  mesh.remote_get(1, 10, &buf, &val, sizeof(double));  // 2 hops
  EXPECT_LT(mesh.modeled_time(0), mesh.modeled_time(1));
  EXPECT_GT(mesh.max_modeled_time(), 0.0);
  mesh.reset_stats();
  EXPECT_EQ(mesh.total_stats().messages, 0u);
}

class ShardedLookup : public ::testing::TestWithParam<int> {};

TEST_P(ShardedLookup, MatchesDirectEvaluation) {
  const pot::EamModel fe = pot::EamModel::iron();
  const auto table = pot::CompactTable::build(
      [&](double r) { return fe.phi(0, 0, r); }, fe.r_min(), fe.cutoff(), 5000);
  RegisterMesh mesh;
  pot::ShardedTableAccess access(table, mesh, GetParam());
  for (double r = 0.6; r < 4.95; r += 0.0173) {
    double v, d, v2, d2;
    access.eval(r, &v, &d);
    table.eval(r, &v2, &d2);
    ASSERT_NEAR(v, v2, 1e-14) << r;
    ASSERT_NEAR(d, d2, 1e-12) << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Cores, ShardedLookup, ::testing::Values(0, 27, 63));

TEST(ShardedLookup, ShardLocalityAvoidsMessages) {
  const auto table = pot::CompactTable::build([](double x) { return x * x; },
                                              0.0, 1.0, 5000);
  RegisterMesh mesh;
  // Core 0 owns samples [0, 79): a lookup near x=0 stays local.
  pot::ShardedTableAccess access(table, mesh, 0);
  double v, d;
  access.eval(0.001, &v, &d);
  EXPECT_EQ(mesh.stats(0).messages, 0u);
  // A lookup deep in another shard costs exactly one message.
  access.eval(0.5, &v, &d);
  EXPECT_EQ(mesh.stats(0).messages, 1u);
}

TEST(ShardedLookup, WindowSpanningTwoShardsCostsTwoMessages) {
  const auto table = pot::CompactTable::build([](double x) { return x; },
                                              0.0, 1.0, 5000);
  RegisterMesh mesh;
  pot::ShardedTableAccess access(table, mesh, 63);
  // Find a segment whose 6-sample window straddles a shard boundary.
  const std::int64_t shard = access.shard_size();
  const double dx = table.dx();
  const double x = (static_cast<double>(shard) - 0.5) * dx;  // segment shard-1
  double v, d;
  access.eval(x, &v, &d);
  EXPECT_EQ(mesh.stats(63).messages, 2u);
}

TEST(ShardedLookup, EntireTableFitsDistributed) {
  // The point of sharding: 5001 samples over 64 stores is ~79 samples
  // (~632 B) per core — resident with room to spare even for 8 alloy tables.
  const auto table = pot::CompactTable::build([](double x) { return x; },
                                              0.0, 1.0, 5000);
  RegisterMesh mesh;
  pot::ShardedTableAccess access(table, mesh, 0);
  const auto per_core_bytes =
      static_cast<std::size_t>(access.shard_size()) * sizeof(double);
  EXPECT_LT(per_core_bytes * 8, 8u * 1024u);  // 8 tables < 8 KB of 64 KB store
}

}  // namespace
}  // namespace mmd::sw
