#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "perf/bench_report.h"
#include "util/json.h"

namespace mmd::perf {
namespace {

BenchReport make_report(const std::string& name,
                        std::vector<std::pair<std::string, std::vector<double>>> metrics,
                        bool lower_is_better = true) {
  BenchReport r;
  r.name = name;
  r.env = capture_bench_env();
  r.warmup = 1;
  r.repeats = 3;
  for (auto& [mname, samples] : metrics) {
    BenchMetric m;
    m.name = mname;
    m.unit = "ms";
    m.lower_is_better = lower_is_better;
    m.samples = std::move(samples);
    m.finalize();
    r.metrics.push_back(std::move(m));
  }
  return r;
}

TEST(BenchMetric, FinalizeRobustStats) {
  BenchMetric m;
  m.samples = {1.0, 2.0, 3.0, 4.0, 100.0};
  m.finalize();
  EXPECT_DOUBLE_EQ(m.median, 3.0);
  EXPECT_DOUBLE_EQ(m.mad, 1.0);
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.max, 100.0);
  EXPECT_DOUBLE_EQ(m.mean, 22.0);
  // Outlier gate: median +/- 3 * 1.4826 * MAD = 3 +/- 4.45 — only 100 is out.
  EXPECT_EQ(m.outliers, 1);
}

TEST(BenchReport, EnvCaptureIsPopulated) {
  const BenchEnv env = capture_bench_env();
  EXPECT_FALSE(env.git_sha.empty());
  // The SHA is resolved at runtime from the source checkout (configure-time
  // value only as fallback): always either abbreviated-hex or "unknown".
  if (env.git_sha != "unknown") {
    EXPECT_GE(env.git_sha.size(), 7u);
    EXPECT_LE(env.git_sha.size(), 40u);
    for (const char c : env.git_sha) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
          << "non-hex char in git_sha: " << env.git_sha;
    }
  }
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.build_type.empty());
  EXPECT_GE(env.hardware_threads, 1);
  // ISO-8601 Zulu, e.g. 2026-08-06T08:05:48Z
  ASSERT_EQ(env.timestamp_utc.size(), 20u);
  EXPECT_EQ(env.timestamp_utc[10], 'T');
  EXPECT_EQ(env.timestamp_utc.back(), 'Z');
}

TEST(BenchReport, JsonRoundTrip) {
  const BenchReport r = make_report("roundtrip", {{"alpha", {1.0, 2.0, 3.0}},
                                                  {"beta", {5.0}}});
  std::ostringstream os;
  r.write_json(os);
  const auto v = util::json::parse(os.str());
  EXPECT_EQ(v.at("schema").str(), "mmd.bench");
  EXPECT_DOUBLE_EQ(v.at("schema_version").number(), BenchReport::kSchemaVersion);

  const BenchReport back = BenchReport::from_json(v);
  EXPECT_EQ(back.name, "roundtrip");
  EXPECT_EQ(back.warmup, 1);
  EXPECT_EQ(back.repeats, 3);
  EXPECT_EQ(back.env.git_sha, r.env.git_sha);
  ASSERT_EQ(back.metrics.size(), 2u);
  const BenchMetric* alpha = back.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_DOUBLE_EQ(alpha->median, 2.0);
  EXPECT_EQ(alpha->samples, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(alpha->lower_is_better);
}

TEST(BenchReport, WriteFileAndLoadFile) {
  const BenchReport r = make_report("filetest", {{"m", {1.0, 2.0, 3.0}}});
  const std::string path = r.write_file(testing::TempDir());
  EXPECT_NE(path.find("BENCH_filetest.json"), std::string::npos);
  const BenchReport back = BenchReport::load_file(path);
  EXPECT_EQ(back.name, "filetest");
  ASSERT_NE(back.find("m"), nullptr);
  EXPECT_DOUBLE_EQ(back.find("m")->median, 2.0);
}

TEST(BenchReport, WriteFileThrowsOnBadDir) {
  const BenchReport r = make_report("nodir", {{"m", {1.0}}});
  EXPECT_THROW((void)r.write_file("/nonexistent-mmd-dir/sub"), std::runtime_error);
}

TEST(BenchReport, FromJsonRejectsWrongSchema) {
  EXPECT_THROW(BenchReport::from_json(util::json::parse(
                   R"({"schema":"other","schema_version":1})")),
               util::json::Error);
  EXPECT_THROW(BenchReport::from_json(util::json::parse(
                   R"({"schema":"mmd.bench","schema_version":999,"name":"x",)"
                   R"("env":{},"harness":{"warmup":0,"repeats":1},"metrics":[]})")),
               util::json::Error);
}

TEST(BenchDiff, IdenticalReportsPass) {
  const BenchReport r = make_report("b", {{"m", {10.0, 10.1, 9.9}}});
  const DiffReport d = diff_reports(r, r);
  EXPECT_EQ(d.overall(), Verdict::Pass);
  ASSERT_EQ(d.metrics.size(), 1u);
  EXPECT_EQ(d.metrics[0].verdict, Verdict::Pass);
  EXPECT_DOUBLE_EQ(d.metrics[0].regression_rel, 0.0);
}

TEST(BenchDiff, SmallRegressionWarnsLargeFails) {
  // Zero-MAD samples: the noise gate collapses and only the relative floors
  // apply (floor 2%, fail 10%).
  const BenchReport base = make_report("b", {{"m", {10.0, 10.0, 10.0}}});
  const BenchReport warn = make_report("b", {{"m", {10.5, 10.5, 10.5}}});
  const BenchReport fail = make_report("b", {{"m", {15.0, 15.0, 15.0}}});
  EXPECT_EQ(diff_reports(base, warn).overall(), Verdict::Warn);
  EXPECT_EQ(diff_reports(base, fail).overall(), Verdict::Fail);
  // Improvements never regress the verdict.
  const BenchReport faster = make_report("b", {{"m", {5.0, 5.0, 5.0}}});
  EXPECT_EQ(diff_reports(base, faster).overall(), Verdict::Pass);
}

TEST(BenchDiff, NoiseGateAbsorbsJitter) {
  // MAD of {9,10,11} is 1 → robust sigma 1.4826, gate 3σ ≈ 44% of the
  // median. A +20% shift is inside the gate: pass, not warn/fail.
  const BenchReport base = make_report("b", {{"m", {9.0, 10.0, 11.0}}});
  const BenchReport cand = make_report("b", {{"m", {11.0, 12.0, 13.0}}});
  const DiffReport d = diff_reports(base, cand);
  EXPECT_EQ(d.overall(), Verdict::Pass);
  EXPECT_GT(d.metrics[0].threshold_rel, 0.2);
}

TEST(BenchDiff, HigherIsBetterFlipsDirection) {
  const BenchReport base = make_report("b", {{"mbps", {100.0, 100.0, 100.0}}},
                                       /*lower_is_better=*/false);
  const BenchReport slower = make_report("b", {{"mbps", {80.0, 80.0, 80.0}}},
                                         /*lower_is_better=*/false);
  const BenchReport higher = make_report("b", {{"mbps", {150.0, 150.0, 150.0}}},
                                         /*lower_is_better=*/false);
  EXPECT_EQ(diff_reports(base, slower).overall(), Verdict::Fail);
  EXPECT_EQ(diff_reports(base, higher).overall(), Verdict::Pass);
}

TEST(BenchDiff, MissingMetricsWarn) {
  const BenchReport base = make_report("b", {{"old", {1.0}}, {"kept", {1.0}}});
  const BenchReport cand = make_report("b", {{"kept", {1.0}}, {"new", {1.0}}});
  const DiffReport d = diff_reports(base, cand);
  EXPECT_EQ(d.overall(), Verdict::Warn);
  int missing_cand = 0, missing_base = 0;
  for (const MetricDiff& m : d.metrics) {
    missing_cand += m.missing_in_candidate ? 1 : 0;
    missing_base += m.missing_in_baseline ? 1 : 0;
  }
  EXPECT_EQ(missing_cand, 1);  // "old"
  EXPECT_EQ(missing_base, 1);  // "new"
}

TEST(BenchDiff, WarnOnlyDemotesFail) {
  const BenchReport base = make_report("b", {{"m", {10.0, 10.0, 10.0}}});
  const BenchReport fail = make_report("b", {{"m", {20.0, 20.0, 20.0}}});
  DiffOptions opt;
  opt.warn_only = true;
  EXPECT_EQ(diff_reports(base, fail, opt).overall(), Verdict::Warn);
}

TEST(BenchDiff, TextTableMentionsEveryMetric) {
  const BenchReport base = make_report("b", {{"m1", {1.0}}, {"m2", {2.0}}});
  const DiffReport d = diff_reports(base, base);
  std::ostringstream os;
  write_diff_text(os, d);
  EXPECT_NE(os.str().find("m1"), std::string::npos);
  EXPECT_NE(os.str().find("m2"), std::string::npos);
  EXPECT_NE(os.str().find("overall: pass"), std::string::npos);
}

}  // namespace
}  // namespace mmd::perf
