#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <numeric>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "comm/world.h"

namespace mmd::comm {
namespace {

TEST(World, RejectsZeroRanks) {
  EXPECT_THROW(World w(0), std::invalid_argument);
}

TEST(World, SingleRankRuns) {
  World w(1);
  int ran = 0;
  w.run([&](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    ran = 1;
  });
  EXPECT_EQ(ran, 1);
}

TEST(World, RankExceptionPropagates) {
  // A rank failure is rethrown on the caller after join. (Like MPI, other
  // ranks must not enter collectives the failed rank would have joined.)
  World w(2);
  EXPECT_THROW(w.run([](Comm& c) {
    c.barrier();
    if (c.rank() == 1) throw std::runtime_error("boom");
  }),
               std::runtime_error);
}

TEST(Comm, SendRecvTyped) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> xs{1.0, 2.0, 3.0};
      c.send(1, 7, std::span<const double>(xs));
    } else {
      auto xs = c.recv_vector<double>(0, 7);
      ASSERT_EQ(xs.size(), 3u);
      EXPECT_DOUBLE_EQ(xs[2], 3.0);
    }
  });
}

TEST(Comm, SelfSendWorks) {
  World w(1);
  w.run([](Comm& c) {
    c.send_value(0, 1, 42);
    auto v = c.recv_vector<int>(0, 1);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 42);
  });
}

TEST(Comm, TagAndSourceMatching) {
  World w(3);
  w.run([](Comm& c) {
    if (c.rank() != 2) {
      c.send_value(2, 10 + c.rank(), c.rank());
    } else {
      // Receive in reverse order of arrival possibility: tag selects.
      auto one = c.recv_vector<int>(kAnySource, 11);
      auto zero = c.recv_vector<int>(kAnySource, 10);
      EXPECT_EQ(one[0], 1);
      EXPECT_EQ(zero[0], 0);
    }
  });
}

TEST(Comm, ProbeReportsSizeWithoutConsuming) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::int64_t> xs(5, 9);
      c.send(1, 3, std::span<const std::int64_t>(xs));
    } else {
      const ProbeInfo info = c.probe(kAnySource, 3);
      EXPECT_EQ(info.src, 0);
      EXPECT_EQ(info.bytes, 5 * sizeof(std::int64_t));
      auto xs = c.recv_vector<std::int64_t>(info.src, info.tag);
      EXPECT_EQ(xs.size(), 5u);
    }
  });
}

TEST(Comm, IprobeNonBlocking) {
  World w(1);
  w.run([](Comm& c) {
    EXPECT_FALSE(c.iprobe().has_value());
    c.send_value(0, 1, 1);
    EXPECT_TRUE(c.iprobe(0, 1).has_value());
  });
}

TEST(Comm, ZeroSizeMessage) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 5, std::span<const int>{});
    } else {
      const ProbeInfo info = c.probe(0, 5);
      EXPECT_EQ(info.bytes, 0u);
      auto v = c.recv_vector<int>(0, 5);
      EXPECT_TRUE(v.empty());
    }
  });
}

class CommCollectives : public ::testing::TestWithParam<int> {};

TEST_P(CommCollectives, AllreduceSum) {
  const int n = GetParam();
  World w(n);
  w.run([&](Comm& c) {
    const double s = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_DOUBLE_EQ(s, n * (n + 1) / 2.0);
  });
}

TEST_P(CommCollectives, AllreduceMax) {
  const int n = GetParam();
  World w(n);
  w.run([&](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_max(static_cast<double>(c.rank())), n - 1.0);
    EXPECT_EQ(c.allreduce_max_u64(static_cast<std::uint64_t>(c.rank()) * 3),
              static_cast<std::uint64_t>(n - 1) * 3);
  });
}

TEST_P(CommCollectives, RepeatedCollectivesDoNotInterleave) {
  const int n = GetParam();
  World w(n);
  w.run([&](Comm& c) {
    for (int i = 0; i < 50; ++i) {
      const auto s = c.allreduce_sum_u64(static_cast<std::uint64_t>(i));
      ASSERT_EQ(s, static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(n));
    }
  });
}

TEST_P(CommCollectives, BarrierSynchronizes) {
  const int n = GetParam();
  World w(n);
  std::atomic<int> before{0};
  std::atomic<bool> ok{true};
  w.run([&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    if (before.load() != n) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommCollectives,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Comm, WindowPutAndDrain) {
  World w(3);
  w.run([](Comm& c) {
    auto win = c.create_window();
    // Everyone deposits one record into rank (r+1)%3.
    const int target = (c.rank() + 1) % 3;
    const std::int64_t payload = 100 + c.rank();
    c.put(*win, target, std::span<const std::int64_t>(&payload, 1));
    c.barrier();
    auto got = c.drain<std::int64_t>(*win);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 100 + (c.rank() + 2) % 3);
  });
}

TEST(Comm, WindowEmptyDrain) {
  World w(2);
  w.run([](Comm& c) {
    auto win = c.create_window();
    c.barrier();
    EXPECT_TRUE(c.drain<int>(*win).empty());
  });
}

TEST(World, TrafficCounters) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<char> payload(100);
      c.send(1, 1, std::span<const char>(payload));
    } else {
      c.recv(0, 1);
    }
    c.barrier();
  });
  const RankTraffic total = w.total_traffic();
  EXPECT_EQ(total.p2p_msgs_sent, 1u);
  EXPECT_EQ(total.p2p_bytes_sent, 100u);
  EXPECT_EQ(w.traffic(0).p2p_bytes_sent, 100u);
  EXPECT_EQ(w.traffic(1).p2p_bytes_sent, 0u);
  EXPECT_EQ(total.collectives, 2u);
  w.reset_traffic();
  EXPECT_EQ(w.total_traffic().total_bytes(), 0u);
}

TEST(World, WindowTrafficCounted) {
  World w(2);
  w.run([](Comm& c) {
    auto win = c.create_window();
    if (c.rank() == 0) {
      const double x = 1.0;
      c.put(*win, 1, std::span<const double>(&x, 1));
    }
    c.barrier();
    c.drain<double>(*win);
  });
  EXPECT_EQ(w.total_traffic().onesided_puts, 1u);
  EXPECT_EQ(w.total_traffic().onesided_bytes, sizeof(double));
}

class CommGather : public ::testing::TestWithParam<int> {};

TEST_P(CommGather, GatherConcatenatesInRankOrder) {
  const int n = GetParam();
  World w(n);
  w.run([&](Comm& c) {
    // Rank r contributes r+1 copies of its rank id.
    std::vector<int> mine(static_cast<std::size_t>(c.rank() + 1), c.rank());
    auto all = c.gather_to<int>(0, mine);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(n * (n + 1) / 2));
      std::size_t pos = 0;
      for (int r = 0; r < n; ++r) {
        for (int k = 0; k <= r; ++k) EXPECT_EQ(all[pos++], r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CommGather, BroadcastDeliversRootData) {
  const int n = GetParam();
  World w(n);
  w.run([&](Comm& c) {
    std::vector<double> mine;
    if (c.rank() == 1 % n) mine = {1.5, 2.5, 3.5};
    auto got = c.broadcast_from<double>(1 % n, mine);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_DOUBLE_EQ(got[2], 3.5);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommGather, ::testing::Values(1, 2, 5));

TEST(PutWindow, ConcurrentAppendsThenDrainAccountsEveryByte) {
  // Every rank deposits records into every inbox (including its own) from its
  // own thread; after the fence each owner drains exactly the bytes addressed
  // to it, whatever interleaving the appends took.
  constexpr int kRanks = 6;
  constexpr int kRecordsPerPair = 50;
  World w(kRanks);
  std::vector<std::vector<std::uint64_t>> drained(kRanks);
  w.run([&](Comm& c) {
    auto win = c.create_window();
    for (int target = 0; target < c.size(); ++target) {
      for (int k = 0; k < kRecordsPerPair; ++k) {
        // Record encodes (source, target, k) so ordering never matters.
        const std::uint64_t rec =
            (static_cast<std::uint64_t>(c.rank()) << 32) |
            (static_cast<std::uint64_t>(target) << 16) |
            static_cast<std::uint64_t>(k);
        c.put(*win, target, std::span<const std::uint64_t>(&rec, 1));
      }
    }
    c.barrier();  // fence: all puts land before any drain
    drained[static_cast<std::size_t>(c.rank())] = c.drain<std::uint64_t>(*win);
  });

  std::uint64_t total_records = 0;
  for (int me = 0; me < kRanks; ++me) {
    const auto& recs = drained[static_cast<std::size_t>(me)];
    ASSERT_EQ(recs.size(), static_cast<std::size_t>(kRanks) * kRecordsPerPair)
        << "rank " << me;
    total_records += recs.size();
    // Ordering-agnostic accounting: every (source, k) pair arrives exactly
    // once, and every record was addressed to this rank.
    std::set<std::pair<int, int>> seen;
    for (const std::uint64_t rec : recs) {
      const int src = static_cast<int>(rec >> 32);
      const int target = static_cast<int>((rec >> 16) & 0xffff);
      const int k = static_cast<int>(rec & 0xffff);
      EXPECT_EQ(target, me);
      EXPECT_TRUE(seen.emplace(src, k).second) << "duplicate record";
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(kRanks) * kRecordsPerPair);
  }
  // The traffic counters agree with what was drained.
  EXPECT_EQ(w.total_traffic().onesided_puts, total_records);
  EXPECT_EQ(w.total_traffic().onesided_bytes, total_records * sizeof(std::uint64_t));
}

TEST(PutWindow, DrainIsDestructive) {
  World w(2);
  w.run([](Comm& c) {
    auto win = c.create_window();
    if (c.rank() == 0) {
      const std::uint32_t x = 7;
      c.put(*win, 1, std::span<const std::uint32_t>(&x, 1));
    }
    c.barrier();
    if (c.rank() == 1) {
      EXPECT_EQ(c.drain<std::uint32_t>(*win).size(), 1u);
      EXPECT_TRUE(c.drain<std::uint32_t>(*win).empty());
    }
  });
}

TEST(Request, IsendIrecvWaitDelivers) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> xs{1.5, 2.5};
      Request s = c.isend(1, 3, std::span<const double>(xs));
      // Buffered send: the request is born complete.
      EXPECT_TRUE(c.test(s));
      c.wait(s);
      EXPECT_FALSE(s.valid());
    } else {
      Request r = c.irecv(0, 3);
      Message m = c.wait(r);
      EXPECT_FALSE(r.valid());
      EXPECT_EQ(m.src, 0);
      EXPECT_EQ(m.tag, 3);
      auto xs = unpack<double>(m.payload);
      ASSERT_EQ(xs.size(), 2u);
      EXPECT_DOUBLE_EQ(xs[1], 2.5);
    }
  });
}

TEST(Request, IrecvMatchesPrePostedAndQueued) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      // Queued case: message sits in the mailbox before the irecv is posted.
      c.send_value(1, 1, 11);
      c.barrier();
      // Pre-posted case: rank 1 posts before this send leaves.
      c.barrier();
      c.send_value(1, 2, 22);
    } else {
      c.barrier();
      Request q = c.irecv(0, 1);
      EXPECT_TRUE(c.test(q));  // already queued: matched at post time
      EXPECT_EQ(unpack<int>(c.wait(q).payload)[0], 11);
      Request p = c.irecv(0, 2);
      c.barrier();
      EXPECT_EQ(unpack<int>(c.wait(p).payload)[0], 22);
    }
  });
}

TEST(Request, PostedReceiveClaimsBeforeProbe) {
  // deliver() matches pending irecvs BEFORE queueing: once a later message
  // from the same sender is probe-visible, the earlier one must have been
  // claimed by the posted receive, not left in the queue.
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      c.barrier();  // let rank 1 post first
      c.send_value(1, 5, 55);
      c.send_value(1, 6, 66);
    } else {
      Request r = c.irecv(0, 5);
      c.barrier();
      c.probe(0, 6);             // blocks until the SECOND message arrives
      EXPECT_FALSE(c.iprobe(0, 5).has_value());  // first was claimed by the irecv
      EXPECT_TRUE(c.test(r));
      EXPECT_EQ(unpack<int>(c.wait(r).payload)[0], 55);
      c.recv(0, 6);
    }
  });
}

TEST(Request, WildcardIrecvAnySourceAnyTag) {
  const int nranks = 5;
  World w(nranks);
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::set<int> seen;
      for (int i = 0; i < nranks - 1; ++i) {
        Request r = c.irecv(kAnySource, kAnyTag);
        Message m = c.wait(r);
        EXPECT_EQ(m.tag, 100 + m.src);
        seen.insert(m.src);
      }
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(nranks - 1));
    } else {
      c.send_value(0, 100 + c.rank(), c.rank());
    }
  });
}

TEST(Comm, WildcardRecvStressManySenders) {
  // Satellite stress: many concurrent senders into one wildcard receiver,
  // interleaving blocking recv(kAnySource) with iprobe-driven drains. Every
  // message must arrive exactly once with a consistent (src, payload) pair.
  const int nranks = 8;
  constexpr int kPerSender = 200;
  World w(nranks);
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::map<int, std::vector<int>> got;  // src -> payloads in arrival order
      int total = (nranks - 1) * kPerSender;
      while (total > 0) {
        // Drain whatever iprobe sees, then take one blocking wildcard recv.
        while (total > 0 && c.iprobe(kAnySource, 7).has_value()) {
          Message m = c.recv(kAnySource, 7);
          got[m.src].push_back(unpack<int>(m.payload)[0]);
          --total;
        }
        if (total > 0) {
          Message m = c.recv(kAnySource, 7);
          got[m.src].push_back(unpack<int>(m.payload)[0]);
          --total;
        }
      }
      EXPECT_FALSE(c.iprobe(kAnySource, kAnyTag).has_value());
      ASSERT_EQ(got.size(), static_cast<std::size_t>(nranks - 1));
      for (const auto& [src, payloads] : got) {
        ASSERT_EQ(payloads.size(), static_cast<std::size_t>(kPerSender));
        // Per-sender ordering is preserved even under wildcard receives.
        for (int i = 0; i < kPerSender; ++i) {
          EXPECT_EQ(payloads[static_cast<std::size_t>(i)], src * kPerSender + i);
        }
      }
    } else {
      for (int i = 0; i < kPerSender; ++i) {
        c.send_value(0, 7, c.rank() * kPerSender + i);
      }
    }
  });
}

TEST(Request, WaitAllReturnsRequestOrderUnderConcurrentSenders) {
  // wait_all's contract: results come back in REQUEST order regardless of
  // arrival order. Senders fire concurrently and in descending-rank barrier
  // waves, so arrivals are scrambled relative to the post order.
  const int nranks = 8;
  constexpr int kRounds = 50;
  World w(nranks);
  w.run([&](Comm& c) {
    for (int round = 0; round < kRounds; ++round) {
      if (c.rank() == 0) {
        std::vector<Request> rs;
        for (int src = 1; src < nranks; ++src) {
          rs.push_back(c.irecv(src, 9));
        }
        c.barrier();  // release the senders only after every recv is posted
        std::vector<Message> ms = c.wait_all(rs);
        ASSERT_EQ(ms.size(), static_cast<std::size_t>(nranks - 1));
        for (int src = 1; src < nranks; ++src) {
          EXPECT_EQ(ms[static_cast<std::size_t>(src - 1)].src, src);
          EXPECT_EQ(unpack<int>(ms[static_cast<std::size_t>(src - 1)].payload)[0],
                    round * 100 + src);
        }
        for (const Request& r : rs) EXPECT_FALSE(r.valid());
      } else {
        c.barrier();
        c.send_value(0, 9, round * 100 + c.rank());
      }
    }
  });
}

TEST(Request, WaitAnyDrainsEveryChannel) {
  const int nranks = 6;
  World w(nranks);
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<Request> rs;
      for (int src = 1; src < nranks; ++src) rs.push_back(c.irecv(src, 4));
      std::set<int> seen;
      for (int n = 0; n < nranks - 1; ++n) {
        const std::size_t i = c.wait_any(rs);
        Message m = rs[i].take_message();
        EXPECT_EQ(m.src, static_cast<int>(i) + 1);
        seen.insert(m.src);
      }
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(nranks - 1));
    } else {
      c.send_value(0, 4, c.rank());
    }
  });
}

TEST(World, WaitTimeCounted) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      Request r = c.irecv(1, 1);
      c.wait(r);
    } else {
      // Give rank 0 time to block inside wait() so wait_ns accumulates.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      c.send_value(0, 1, 1);
    }
  });
  EXPECT_GT(w.traffic(0).wait_ns, 0u);
  EXPECT_EQ(w.traffic(1).wait_ns, 0u);
}

TEST(Pack, RoundTrip) {
  struct Rec {
    int a;
    double b;
  };
  std::vector<Rec> in{{1, 2.0}, {3, 4.0}};
  auto bytes = pack<Rec>(in);
  auto out = unpack<Rec>(bytes);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].a, 3);
  EXPECT_DOUBLE_EQ(out[1].b, 4.0);
}

}  // namespace
}  // namespace mmd::comm
