#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/world.h"

namespace mmd::comm {
namespace {

TEST(World, RejectsZeroRanks) {
  EXPECT_THROW(World w(0), std::invalid_argument);
}

TEST(World, SingleRankRuns) {
  World w(1);
  int ran = 0;
  w.run([&](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    ran = 1;
  });
  EXPECT_EQ(ran, 1);
}

TEST(World, RankExceptionPropagates) {
  // A rank failure is rethrown on the caller after join. (Like MPI, other
  // ranks must not enter collectives the failed rank would have joined.)
  World w(2);
  EXPECT_THROW(w.run([](Comm& c) {
    c.barrier();
    if (c.rank() == 1) throw std::runtime_error("boom");
  }),
               std::runtime_error);
}

TEST(Comm, SendRecvTyped) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> xs{1.0, 2.0, 3.0};
      c.send(1, 7, std::span<const double>(xs));
    } else {
      auto xs = c.recv_vector<double>(0, 7);
      ASSERT_EQ(xs.size(), 3u);
      EXPECT_DOUBLE_EQ(xs[2], 3.0);
    }
  });
}

TEST(Comm, SelfSendWorks) {
  World w(1);
  w.run([](Comm& c) {
    c.send_value(0, 1, 42);
    auto v = c.recv_vector<int>(0, 1);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 42);
  });
}

TEST(Comm, TagAndSourceMatching) {
  World w(3);
  w.run([](Comm& c) {
    if (c.rank() != 2) {
      c.send_value(2, 10 + c.rank(), c.rank());
    } else {
      // Receive in reverse order of arrival possibility: tag selects.
      auto one = c.recv_vector<int>(kAnySource, 11);
      auto zero = c.recv_vector<int>(kAnySource, 10);
      EXPECT_EQ(one[0], 1);
      EXPECT_EQ(zero[0], 0);
    }
  });
}

TEST(Comm, ProbeReportsSizeWithoutConsuming) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::int64_t> xs(5, 9);
      c.send(1, 3, std::span<const std::int64_t>(xs));
    } else {
      const ProbeInfo info = c.probe(kAnySource, 3);
      EXPECT_EQ(info.src, 0);
      EXPECT_EQ(info.bytes, 5 * sizeof(std::int64_t));
      auto xs = c.recv_vector<std::int64_t>(info.src, info.tag);
      EXPECT_EQ(xs.size(), 5u);
    }
  });
}

TEST(Comm, IprobeNonBlocking) {
  World w(1);
  w.run([](Comm& c) {
    EXPECT_FALSE(c.iprobe().has_value());
    c.send_value(0, 1, 1);
    EXPECT_TRUE(c.iprobe(0, 1).has_value());
  });
}

TEST(Comm, ZeroSizeMessage) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 5, std::span<const int>{});
    } else {
      const ProbeInfo info = c.probe(0, 5);
      EXPECT_EQ(info.bytes, 0u);
      auto v = c.recv_vector<int>(0, 5);
      EXPECT_TRUE(v.empty());
    }
  });
}

class CommCollectives : public ::testing::TestWithParam<int> {};

TEST_P(CommCollectives, AllreduceSum) {
  const int n = GetParam();
  World w(n);
  w.run([&](Comm& c) {
    const double s = c.allreduce_sum(static_cast<double>(c.rank() + 1));
    EXPECT_DOUBLE_EQ(s, n * (n + 1) / 2.0);
  });
}

TEST_P(CommCollectives, AllreduceMax) {
  const int n = GetParam();
  World w(n);
  w.run([&](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_max(static_cast<double>(c.rank())), n - 1.0);
    EXPECT_EQ(c.allreduce_max_u64(static_cast<std::uint64_t>(c.rank()) * 3),
              static_cast<std::uint64_t>(n - 1) * 3);
  });
}

TEST_P(CommCollectives, RepeatedCollectivesDoNotInterleave) {
  const int n = GetParam();
  World w(n);
  w.run([&](Comm& c) {
    for (int i = 0; i < 50; ++i) {
      const auto s = c.allreduce_sum_u64(static_cast<std::uint64_t>(i));
      ASSERT_EQ(s, static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(n));
    }
  });
}

TEST_P(CommCollectives, BarrierSynchronizes) {
  const int n = GetParam();
  World w(n);
  std::atomic<int> before{0};
  std::atomic<bool> ok{true};
  w.run([&](Comm& c) {
    before.fetch_add(1);
    c.barrier();
    if (before.load() != n) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommCollectives,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(Comm, WindowPutAndDrain) {
  World w(3);
  w.run([](Comm& c) {
    auto win = c.create_window();
    // Everyone deposits one record into rank (r+1)%3.
    const int target = (c.rank() + 1) % 3;
    const std::int64_t payload = 100 + c.rank();
    c.put(*win, target, std::span<const std::int64_t>(&payload, 1));
    c.barrier();
    auto got = c.drain<std::int64_t>(*win);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 100 + (c.rank() + 2) % 3);
  });
}

TEST(Comm, WindowEmptyDrain) {
  World w(2);
  w.run([](Comm& c) {
    auto win = c.create_window();
    c.barrier();
    EXPECT_TRUE(c.drain<int>(*win).empty());
  });
}

TEST(World, TrafficCounters) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<char> payload(100);
      c.send(1, 1, std::span<const char>(payload));
    } else {
      c.recv(0, 1);
    }
    c.barrier();
  });
  const RankTraffic total = w.total_traffic();
  EXPECT_EQ(total.p2p_msgs_sent, 1u);
  EXPECT_EQ(total.p2p_bytes_sent, 100u);
  EXPECT_EQ(w.traffic(0).p2p_bytes_sent, 100u);
  EXPECT_EQ(w.traffic(1).p2p_bytes_sent, 0u);
  EXPECT_EQ(total.collectives, 2u);
  w.reset_traffic();
  EXPECT_EQ(w.total_traffic().total_bytes(), 0u);
}

TEST(World, WindowTrafficCounted) {
  World w(2);
  w.run([](Comm& c) {
    auto win = c.create_window();
    if (c.rank() == 0) {
      const double x = 1.0;
      c.put(*win, 1, std::span<const double>(&x, 1));
    }
    c.barrier();
    c.drain<double>(*win);
  });
  EXPECT_EQ(w.total_traffic().onesided_puts, 1u);
  EXPECT_EQ(w.total_traffic().onesided_bytes, sizeof(double));
}

class CommGather : public ::testing::TestWithParam<int> {};

TEST_P(CommGather, GatherConcatenatesInRankOrder) {
  const int n = GetParam();
  World w(n);
  w.run([&](Comm& c) {
    // Rank r contributes r+1 copies of its rank id.
    std::vector<int> mine(static_cast<std::size_t>(c.rank() + 1), c.rank());
    auto all = c.gather_to<int>(0, mine);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(n * (n + 1) / 2));
      std::size_t pos = 0;
      for (int r = 0; r < n; ++r) {
        for (int k = 0; k <= r; ++k) EXPECT_EQ(all[pos++], r);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CommGather, BroadcastDeliversRootData) {
  const int n = GetParam();
  World w(n);
  w.run([&](Comm& c) {
    std::vector<double> mine;
    if (c.rank() == 1 % n) mine = {1.5, 2.5, 3.5};
    auto got = c.broadcast_from<double>(1 % n, mine);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_DOUBLE_EQ(got[2], 3.5);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommGather, ::testing::Values(1, 2, 5));

TEST(Pack, RoundTrip) {
  struct Rec {
    int a;
    double b;
  };
  std::vector<Rec> in{{1, 2.0}, {3, 4.0}};
  auto bytes = pack<Rec>(in);
  auto out = unpack<Rec>(bytes);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].a, 3);
  EXPECT_DOUBLE_EQ(out[1].b, 4.0);
}

}  // namespace
}  // namespace mmd::comm
