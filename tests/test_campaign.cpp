// Campaign service mode end to end (serve::CampaignRunner): per-job results
// bit-identical to standalone runs, resume-without-rerun after a mid-campaign
// stop, mid-job checkpoint pickup, priority scheduling, shared-pool
// interleaving evidence, and the summary JSON artifact.
#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/simulation.h"
#include "serve/campaign.h"
#include "serve/campaign_runner.h"
#include "util/json.h"
#include "util/key_value.h"

namespace mmd {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path d = fs::path(::testing::TempDir()) / ("mmd_campaign_" + name);
  fs::remove_all(d);
  fs::create_directories(d);
  return d.string();
}

/// A fast heterogeneous 4-job matrix (2 energies x 2 temperatures).
constexpr const char* kQuickCampaign =
    "campaign.name = quick\n"
    "campaign.max_concurrent = 2\n"
    "box = 6\n"
    "md.time_ps = 0.02\n"
    "md.table_segments = 400\n"
    "kmc.table_segments = 200\n"
    "kmc.cycles = 8\n"
    "sweep.pka.energy_ev = 40,80\n"
    "sweep.temperature = 300,600\n";

serve::CampaignSpec quick_spec(const std::string& extra = "") {
  return serve::CampaignSpec::parse(util::KeyValueConfig::parse(
      std::string(kQuickCampaign) + extra, "quick.mmd"));
}

/// Strips the "(0.123 s)" wall-time parentheticals from to_string(): timing
/// is the one report field that legitimately differs between two runs of the
/// same scenario, and CI's restart-equivalence check strips it the same way.
std::string sans_timings(const core::SimulationReport& r) {
  std::string s = core::to_string(r);
  for (auto open = s.find(" ("); open != std::string::npos;
       open = s.find(" (", open)) {
    const auto close = s.find(" s)", open);
    if (close == std::string::npos) break;
    s.erase(open, close + 3 - open);
  }
  return s;
}

void expect_bit_identical(const core::SimulationReport& a,
                          const core::SimulationReport& b) {
  EXPECT_EQ(sans_timings(a), sans_timings(b));
  EXPECT_EQ(a.final_vacancies, b.final_vacancies);
  EXPECT_EQ(a.kmc_events, b.kmc_events);
  EXPECT_EQ(a.kmc_mc_time, b.kmc_mc_time);
  EXPECT_EQ(a.vacancy_concentration, b.vacancy_concentration);
}

TEST(CampaignRunner, JobsBitIdenticalToStandaloneRuns) {
  serve::CampaignRunner::Options opt;
  opt.root = fresh_dir("bit_identity");
  serve::CampaignRunner runner(quick_spec(), opt);
  const auto outcome = runner.run();
  ASSERT_TRUE(outcome.complete);
  ASSERT_EQ(outcome.jobs.size(), 4u);
  EXPECT_EQ(outcome.completed, 4);

  // Every interleaved job must reproduce a standalone Simulation of the same
  // expanded scenario exactly (concurrency and shared assets change nothing).
  const auto spec = quick_spec();
  for (std::size_t i = 0; i < outcome.jobs.size(); ++i) {
    core::Simulation standalone(core::scenario_from_kv(spec.jobs[i].config));
    const auto expected = standalone.run();
    expect_bit_identical(outcome.jobs[i].report, expected);
  }
  // The cache built one MD + one KMC set for the whole campaign: the other
  // 3 jobs' 6 requests all hit.
  EXPECT_EQ(outcome.assets.misses, 2u);
  EXPECT_EQ(outcome.assets.hits, 6u);
}

TEST(CampaignRunner, SlaveJobsOnSharedPoolMatchStandaloneOwnPool) {
  serve::CampaignRunner::Options opt;
  opt.root = fresh_dir("slave_identity");
  serve::CampaignRunner runner(
      quick_spec("accel = slave\ncampaign.pool_cores = 4\n"), opt);
  const auto outcome = runner.run();
  ASSERT_TRUE(outcome.complete);

  // Interleaving evidence: the shared pool executed every job's epochs, and
  // with 2 lanes of runnable work some epochs found it busy.
  EXPECT_GT(outcome.pool.epochs, 0u);
  EXPECT_GT(outcome.pool.busy_seconds, 0.0);
  EXPECT_GT(outcome.pool_utilization, 0.0);

  const auto spec = quick_spec("accel = slave\ncampaign.pool_cores = 4\n");
  for (std::size_t i = 0; i < outcome.jobs.size(); ++i) {
    core::SimulationConfig cfg = core::scenario_from_kv(spec.jobs[i].config);
    ASSERT_TRUE(cfg.use_slave_force);
    core::Simulation standalone(cfg);  // owns a private pool
    expect_bit_identical(outcome.jobs[i].report, standalone.run());
  }
}

TEST(CampaignRunner, ResumeSkipsFinishedJobsAndCompletesTheRest) {
  const std::string root = fresh_dir("resume");
  std::vector<std::uint32_t> first_crcs;
  {
    serve::CampaignRunner::Options opt;
    opt.root = root;
    opt.max_concurrent = 1;  // deterministic: exactly one job finishes
    opt.stop_after_jobs = 1;
    serve::CampaignRunner runner(quick_spec(), opt);
    const auto outcome = runner.run();
    EXPECT_FALSE(outcome.complete);
    EXPECT_EQ(outcome.completed, 1);
    ASSERT_EQ(outcome.jobs.size(), 1u);
    first_crcs.push_back(outcome.jobs[0].vacancies_crc);
  }
  {
    serve::CampaignRunner::Options opt;
    opt.root = root;
    opt.resume = true;
    serve::CampaignRunner runner(quick_spec(), opt);
    const auto outcome = runner.run();
    EXPECT_TRUE(outcome.complete);
    EXPECT_EQ(outcome.skipped, 1);   // the finished job was not rerun
    EXPECT_EQ(outcome.completed, 3);
    ASSERT_EQ(outcome.jobs.size(), 4u);
    // The skipped job's marker round-trips its fingerprint.
    EXPECT_TRUE(outcome.jobs[0].skipped);
    EXPECT_EQ(outcome.jobs[0].vacancies_crc, first_crcs[0]);
  }
}

TEST(CampaignRunner, ResumePicksUpMidJobCheckpoints) {
  const std::string root = fresh_dir("midjob");
  const auto spec = quick_spec();

  // Simulate a campaign killed mid-job: run job j000's scenario through
  // cycle 4 only, checkpointing into the runner's per-job directory layout.
  {
    core::SimulationConfig partial = core::scenario_from_kv(spec.jobs[0].config);
    partial.kmc_cycles = 4;
    partial.checkpoint_every = 2;
    partial.checkpoint_dir = (fs::path(root) / "j000" / "ckpt").string();
    core::Simulation sim(partial);
    (void)sim.run();
  }

  serve::CampaignRunner::Options opt;
  opt.root = root;
  opt.resume = true;
  opt.checkpoint_every = 2;
  serve::CampaignRunner runner(quick_spec(), opt);
  const auto outcome = runner.run();
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.skipped, 0);  // no result marker existed — all jobs ran
  ASSERT_EQ(outcome.jobs.size(), 4u);
  // j000 restarted from the mid-job checkpoint, not from scratch...
  EXPECT_TRUE(outcome.jobs[0].report.resumed);
  EXPECT_EQ(outcome.jobs[0].report.resumed_from_cycle, 4u);
  // ...and restart equivalence holds inside a campaign too.
  core::Simulation standalone(core::scenario_from_kv(spec.jobs[0].config));
  expect_bit_identical(outcome.jobs[0].report, standalone.run());
}

TEST(CampaignRunner, FailedJobDoesNotTakeDownTheFleet) {
  serve::CampaignRunner::Options opt;
  opt.root = fresh_dir("failed_job");
  // ranks=2 splits the 6-cell box into 3-cell subdomains: the traditional
  // ghost strategy rejects that at runtime (>= 5 cells per axis), on-demand
  // accepts it — one job of the pair fails, the other must still finish.
  serve::CampaignRunner runner(
      serve::CampaignSpec::parse(util::KeyValueConfig::parse(
          "box = 6\nranks = 2\nmd.time_ps = 0.02\n"
          "md.table_segments = 400\nkmc.table_segments = 200\n"
          "kmc.cycles = 4\n"
          "sweep.kmc.strategy = traditional,on-demand\n")),
      opt);
  const auto outcome = runner.run();
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.failed, 1);
  EXPECT_EQ(outcome.completed, 1);
  ASSERT_EQ(outcome.jobs.size(), 2u);
  EXPECT_NE(outcome.jobs[0].error.find("GhostComm"), std::string::npos);
  EXPECT_TRUE(outcome.jobs[1].error.empty());
  EXPECT_GT(outcome.jobs[1].kmc_events, 0u);
  // No marker for the failed job: a resumed campaign would retry it.
  EXPECT_FALSE(fs::exists(fs::path(opt.root) / "j000" / "result.mmd"));
  EXPECT_TRUE(fs::exists(fs::path(opt.root) / "j001" / "result.mmd"));
}

TEST(CampaignRunner, SweepsSampledModeAlongsideDetailed) {
  serve::CampaignRunner::Options opt;
  opt.root = fresh_dir("sampled_sweep");
  // One campaign, two schedules of the same scenario: all-detailed KMC next
  // to the sampled window/stride mode (docs/SAMPLING.md).
  serve::CampaignRunner runner(
      serve::CampaignSpec::parse(util::KeyValueConfig::parse(
          "box = 6\nmd.time_ps = 0.02\n"
          "md.table_segments = 400\nkmc.table_segments = 200\n"
          "kmc.cycles = 24\nsample.window = 3\nsample.stride = 9\n"
          "sample.replicates = 4\n"
          "sweep.sample.mode = off,scd\n")),
      opt);
  const auto outcome = runner.run();
  EXPECT_TRUE(outcome.complete);
  ASSERT_EQ(outcome.jobs.size(), 2u);
  const auto& detailed = outcome.jobs[0];
  const auto& sampled = outcome.jobs[1];
  EXPECT_TRUE(detailed.error.empty()) << detailed.error;
  EXPECT_TRUE(sampled.error.empty()) << sampled.error;
  // Schedule: 24 cycles in (3 detailed + 9 coarse) periods -> 2 windows.
  EXPECT_EQ(detailed.report.sampled.windows, 0u);
  EXPECT_EQ(sampled.report.sampled.windows, 2u);
  // Only the windows run detailed KMC, so the sampled job executes far
  // fewer detailed events than its all-detailed twin.
  EXPECT_LT(sampled.kmc_events, detailed.kmc_events);
  EXPECT_NE(core::to_string(sampled.report).find("Sampled mode"),
            std::string::npos);
}

TEST(CampaignRunner, SingleLaneRunsHigherPriorityFirst) {
  serve::CampaignRunner::Options opt;
  opt.root = fresh_dir("priority");
  opt.max_concurrent = 1;
  std::mutex mu;
  std::vector<std::string> order;
  opt.on_job_complete = [&](const serve::JobResult& r) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(r.id);
  };
  // Two tiny jobs; the later one outranks the earlier.
  serve::CampaignRunner runner(
      serve::CampaignSpec::parse(util::KeyValueConfig::parse(
          "box = 6\nmd.time_ps = 0.01\nkmc.cycles = 2\n"
          "md.table_segments = 400\nkmc.table_segments = 200\n"
          "sweep.job.priority = 0,9\n")),
      opt);
  const auto outcome = runner.run();
  ASSERT_TRUE(outcome.complete);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "j001");  // priority 9 before priority 0
  EXPECT_EQ(order[1], "j000");
}

TEST(CampaignRunner, SummaryJsonCarriesRollupAndNamespacedMetrics) {
  serve::CampaignRunner::Options opt;
  opt.root = fresh_dir("summary");
  serve::CampaignRunner runner(quick_spec(), opt);
  const auto outcome = runner.run();
  const std::string path = opt.root + "/summary.json";
  ASSERT_TRUE(serve::write_campaign_summary_file(path, runner.spec(), outcome));

  const auto doc = util::json::parse_file(path);
  EXPECT_EQ(doc.at("campaign").str(), "quick");
  EXPECT_EQ(doc.at("jobs_total").number(), 4.0);
  EXPECT_EQ(doc.at("completed").number(), 4.0);
  EXPECT_TRUE(doc.at("complete").boolean());
  EXPECT_GT(doc.at("jobs_per_hour").number(), 0.0);
  ASSERT_EQ(doc.at("jobs").array().size(), 4u);
  const auto& j0 = doc.at("jobs").array()[0];
  EXPECT_EQ(j0.at("id").str(), "j000");
  EXPECT_GT(j0.at("phase").at("md_seconds").number(), 0.0);
  // Fleet rollup: plain totals plus the job/<id>/ namespace.
  const auto& counters = doc.at("metrics").at("counters");
  ASSERT_NE(counters.find("kmc.events"), nullptr);
  ASSERT_NE(counters.find("job/j000/kmc.events"), nullptr);
  ASSERT_NE(counters.find("job/j003/kmc.events"), nullptr);
  // The per-job values sum to the fleet total.
  double sum = 0.0;
  for (int j = 0; j < 4; ++j) {
    sum += counters.at("job/j00" + std::to_string(j) + "/kmc.events").number();
  }
  EXPECT_EQ(sum, counters.at("kmc.events").number());
}

}  // namespace
}  // namespace mmd
