#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "lattice/lattice_neighbor_list.h"
#include "lattice/verlet_list.h"

namespace mmd::lat {
namespace {

constexpr double kA = 2.855;
constexpr double kCut = 5.0;

/// Single-rank LNL covering the whole box.
LatticeNeighborList make_lnl(const BccGeometry& g, int halo = 2) {
  LocalBox box{0, 0, 0, g.nx(), g.ny(), g.nz(), halo};
  return LatticeNeighborList(g, box, kCut);
}

TEST(Lnl, RejectsTooSmallHalo) {
  BccGeometry g(6, 6, 6, kA);
  LocalBox box{0, 0, 0, 6, 6, 6, 1};
  EXPECT_THROW(LatticeNeighborList(g, box, kCut), std::invalid_argument);
}

TEST(Lnl, FillPerfectPopulatesEverything) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  EXPECT_EQ(lnl.count_owned_atoms(), static_cast<std::size_t>(g.num_sites()));
  EXPECT_EQ(lnl.count_owned_vacancies(), 0u);
  EXPECT_EQ(lnl.count_live_runaways(), 0u);
  for (std::size_t i = 0; i < lnl.size(); ++i) {
    EXPECT_TRUE(lnl.entry(i).is_atom());
  }
}

TEST(Lnl, SiteRankWrapsGhosts) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  const LocalBox& b = lnl.box();
  // Ghost cell (-1,0,0) is the wrap of owned cell (3,0,0).
  const std::size_t ghost = b.entry_index({-1, 0, 0, 0});
  const std::size_t owned = b.entry_index({3, 0, 0, 0});
  EXPECT_EQ(lnl.site_rank(ghost), lnl.site_rank(owned));
  // But their ideal positions differ by the box length (local frame).
  EXPECT_NEAR(lnl.ideal_position(owned).x - lnl.ideal_position(ghost).x,
              4 * kA, 1e-12);
}

TEST(Lnl, NeighborCountOnPerfectLattice) {
  BccGeometry g(5, 5, 5, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  const std::size_t center = lnl.box().entry_index({2, 2, 2, 0});
  int count = 0;
  lnl.for_each_neighbor_of_entry(center, [&](const ParticleView&) { ++count; });
  EXPECT_EQ(count, 58);  // shells within 5.0 A
}

TEST(Lnl, NeighborSetMatchesVerletAndLinkedCell) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);

  // Baseline structures on the same perfect crystal.
  std::vector<util::Vec3> pos(static_cast<std::size_t>(g.num_sites()));
  for (std::int64_t id = 0; id < g.num_sites(); ++id) {
    pos[static_cast<std::size_t>(id)] = g.position(g.site_coord(id));
  }
  VerletNeighborList verlet(kCut, 0.0);
  verlet.build(pos, g.box_length());
  LinkedCellList cells(kCut);
  cells.build(pos, g.box_length());

  for (std::size_t idx : lnl.owned_indices()) {
    const std::int64_t id = lnl.entry(idx).id;
    std::set<std::int64_t> from_lnl;
    lnl.for_each_neighbor_of_entry(
        idx, [&](const ParticleView& p) { from_lnl.insert(p.id); });
    std::set<std::int64_t> from_verlet;
    for (std::int32_t j : verlet.neighbors(static_cast<std::size_t>(id))) {
      from_verlet.insert(j);
    }
    std::set<std::int64_t> from_cells;
    cells.for_each_neighbor(static_cast<std::size_t>(id),
                            [&](std::size_t j, const util::Vec3&) {
                              from_cells.insert(static_cast<std::int64_t>(j));
                            });
    ASSERT_EQ(from_lnl, from_verlet) << "atom " << id;
    ASSERT_EQ(from_lnl, from_cells) << "atom " << id;
  }
}

TEST(Lnl, MemoryFootprintBelowVerlet) {
  // The paper's motivation: LNL stores no neighbor indices, so its footprint
  // per atom undercuts a Verlet list with ~58 neighbors per atom.
  BccGeometry g(6, 6, 6, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  std::vector<util::Vec3> pos(static_cast<std::size_t>(g.num_sites()));
  for (std::int64_t id = 0; id < g.num_sites(); ++id) {
    pos[static_cast<std::size_t>(id)] = g.position(g.site_coord(id));
  }
  VerletNeighborList verlet(kCut, 0.6);
  verlet.build(pos, g.box_length());
  // Compare the *neighbor bookkeeping* cost: Verlet index storage vs LNL's
  // fixed offset tables (which do not grow with atom count).
  EXPECT_GT(verlet.memory_bytes(), 50u * pos.size());
}

TEST(Lnl, DetachCreatesVacancyAndRunaway) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  const std::size_t idx = lnl.box().entry_index({1, 1, 1, 0});
  const std::int64_t id = lnl.entry(idx).id;
  lnl.entry(idx).r += util::Vec3{0.4, 0.0, 0.0};  // still nearest to own site
  const std::int32_t ri = lnl.detach(idx);
  ASSERT_NE(ri, AtomEntry::kNoRunaway);
  EXPECT_TRUE(lnl.entry(idx).is_vacancy());
  EXPECT_EQ(AtomEntry::vacancy_site(lnl.entry(idx).id), lnl.site_rank(idx));
  EXPECT_EQ(lnl.entry(idx).r, lnl.ideal_position(idx));  // vacancy coordinates
  EXPECT_EQ(lnl.runaway(ri).id, id);
  EXPECT_EQ(lnl.count_owned_vacancies(), 1u);
  EXPECT_EQ(lnl.count_live_runaways(), 1u);
  // Total atoms conserved.
  EXPECT_EQ(lnl.count_owned_atoms(), static_cast<std::size_t>(g.num_sites()));
}

TEST(Lnl, DetachThrowsOnVacancy) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  const std::size_t idx = lnl.box().entry_index({1, 1, 1, 0});
  lnl.detach(idx);
  EXPECT_THROW(lnl.detach(idx), std::logic_error);
}

TEST(Lnl, RunawayVisibleToNeighbors) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  const std::size_t idx = lnl.box().entry_index({2, 2, 2, 0});
  const std::int64_t id = lnl.entry(idx).id;
  lnl.detach(idx);
  // A 1NN of the detached site must still see the atom (as a run-away).
  const std::size_t nb = lnl.box().entry_index({2, 2, 2, 1});
  bool seen = false;
  int vac_seen = 0;
  lnl.for_each_neighbor_of_entry(nb, [&](const ParticleView& p) {
    if (p.id == id) seen = true;
    if (p.id < 0) ++vac_seen;
  });
  EXPECT_TRUE(seen);
  EXPECT_EQ(vac_seen, 0);  // vacancies are not particles
}

TEST(Lnl, RunawayNeighborsMatchHost) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  const std::size_t idx = lnl.box().entry_index({2, 2, 2, 0});
  const std::int32_t ri = lnl.detach(idx);
  std::set<std::int64_t> seen;
  lnl.for_each_neighbor_of_runaway(ri, idx, [&](const ParticleView& p) {
    EXPECT_NE(p.id, lnl.runaway(ri).id);  // excludes itself
    seen.insert(p.id);
  });
  // All 58 lattice neighbors of the host are still atoms (the vacancy is the
  // host entry itself, which is not in its own neighbor region).
  EXPECT_EQ(seen.size(), 58u);
}

TEST(Lnl, RehomeReoccupiesVacancy) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  const std::size_t idx = lnl.box().entry_index({2, 2, 2, 0});
  const std::int64_t id = lnl.entry(idx).id;
  const std::int32_t ri = lnl.detach(idx);
  // Atom returns to its lattice point.
  lnl.runaway(ri).r = lnl.ideal_position(idx);
  std::vector<RunawayAtom> emigrants;
  const int reoccupied = lnl.rehome_runaways(&emigrants);
  EXPECT_EQ(reoccupied, 1);
  EXPECT_TRUE(emigrants.empty());
  EXPECT_TRUE(lnl.entry(idx).is_atom());
  EXPECT_EQ(lnl.entry(idx).id, id);
  EXPECT_EQ(lnl.count_live_runaways(), 0u);
  EXPECT_EQ(lnl.count_owned_vacancies(), 0u);
}

TEST(Lnl, RehomeRelinksToNewHost) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  const std::size_t idx = lnl.box().entry_index({2, 2, 2, 0});
  const std::int32_t ri = lnl.detach(idx);
  // Move next to the body-center neighbor (occupied -> interstitial stays).
  const std::size_t new_host = lnl.box().entry_index({2, 2, 2, 1});
  lnl.runaway(ri).r = lnl.ideal_position(new_host) + util::Vec3{0.2, 0.0, 0.0};
  lnl.rehome_runaways(nullptr);
  EXPECT_EQ(lnl.entry(new_host).runaway_head, ri);
  EXPECT_EQ(lnl.entry(idx).runaway_head, AtomEntry::kNoRunaway);
}

TEST(Lnl, ChainHandlesMultipleRunaways) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  const std::size_t host = lnl.box().entry_index({2, 2, 2, 0});
  RunawayAtom a;
  a.id = 1000;
  a.r = lnl.ideal_position(host);
  const std::int32_t r1 = lnl.add_runaway(a, host);
  a.id = 1001;
  const std::int32_t r2 = lnl.add_runaway(a, host);
  EXPECT_EQ(lnl.entry(host).runaway_head, r2);
  EXPECT_EQ(lnl.runaway(r2).next, r1);
  lnl.remove_runaway(r1, host);
  EXPECT_EQ(lnl.entry(host).runaway_head, r2);
  EXPECT_EQ(lnl.runaway(r2).next, AtomEntry::kNoRunaway);
  // Pool reuse: freed slot is recycled.
  a.id = 1002;
  EXPECT_EQ(lnl.add_runaway(a, host), r1);
}

TEST(Lnl, RemoveRunawayThrowsIfNotInChain) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  const std::size_t h1 = lnl.box().entry_index({1, 1, 1, 0});
  const std::size_t h2 = lnl.box().entry_index({2, 2, 2, 0});
  RunawayAtom a;
  const std::int32_t ri = lnl.add_runaway(a, h1);
  EXPECT_THROW(lnl.remove_runaway(ri, h2), std::logic_error);
}

TEST(Lnl, ClearGhostsDropsGhostChains) {
  BccGeometry g(4, 4, 4, kA);
  auto lnl = make_lnl(g);
  lnl.fill_perfect(Species::Fe);
  const std::size_t ghost = lnl.box().entry_index({-1, 0, 0, 0});
  RunawayAtom a;
  lnl.add_runaway(a, ghost);
  EXPECT_EQ(lnl.count_live_runaways(), 1u);
  lnl.clear_ghosts();
  EXPECT_EQ(lnl.count_live_runaways(), 0u);
  EXPECT_TRUE(lnl.entry(ghost).is_unset());
}

TEST(Lnl, NearestOwnedEntryClamps) {
  BccGeometry g(4, 4, 4, kA);
  LocalBox box{0, 0, 0, 2, 4, 4, 2};  // pretend a 2-cell-wide subdomain
  LatticeNeighborList lnl(g, box, kCut);
  // Position beyond the owned x-range clamps to an owned site.
  const util::Vec3 outside{3.2 * kA, 1.0 * kA, 1.0 * kA};
  const std::size_t owned = lnl.nearest_owned_entry(outside);
  EXPECT_TRUE(lnl.is_owned(owned));
  // Plain nearest lands in the ghost region instead.
  const std::size_t plain = lnl.nearest_entry(outside);
  EXPECT_FALSE(lnl.is_owned(plain));
}

TEST(Lnl, InteriorBoundaryPartitionOwned) {
  // interior + boundary must partition owned_indices() exactly, interior
  // cells must sit >= halo from every face, and the boundary shell helper
  // must cover the complement with disjoint regions.
  BccGeometry g(6, 6, 6, kA);
  auto lnl = make_lnl(g);
  const LocalBox& b = lnl.box();

  std::set<std::size_t> in(lnl.owned_interior_indices().begin(),
                           lnl.owned_interior_indices().end());
  std::set<std::size_t> bd(lnl.owned_boundary_indices().begin(),
                           lnl.owned_boundary_indices().end());
  EXPECT_EQ(in.size() + bd.size(), lnl.owned_indices().size());
  for (std::size_t i : in) EXPECT_EQ(bd.count(i), 0u);

  const CellRegion interior = interior_region(b, b.halo);
  for (std::size_t i : lnl.owned_indices()) {
    const LocalCoord c = b.coord_of(i);
    EXPECT_EQ(interior.contains(c), in.count(i) == 1) << i;
  }

  // The shell regions are disjoint and cover exactly the boundary indices.
  std::vector<CellRegion> shell;
  boundary_shell(b, b.halo, shell);
  std::set<std::size_t> covered;
  for (const CellRegion& r : shell) {
    for (std::size_t i : lnl.owned_indices()) {
      if (r.contains(b.coord_of(i))) {
        EXPECT_TRUE(covered.insert(i).second) << "region overlap at " << i;
      }
    }
  }
  EXPECT_EQ(covered, bd);
}

TEST(Lnl, InteriorEmptyWhenBoxThin) {
  // A 3-cell box with halo 2 has no cell >= 2 from both faces on any axis:
  // everything is boundary, and the shell collapses to the full owned box.
  BccGeometry g(3, 3, 3, kA);
  auto lnl = make_lnl(g);
  EXPECT_TRUE(lnl.owned_interior_indices().empty());
  EXPECT_EQ(lnl.owned_boundary_indices().size(), lnl.owned_indices().size());
  std::vector<CellRegion> shell;
  boundary_shell(lnl.box(), lnl.box().halo, shell);
  ASSERT_EQ(shell.size(), 1u);
  EXPECT_EQ(shell[0].cells(), 27u);
}

TEST(Lnl, MemoryBytesGrowsWithBox) {
  BccGeometry g4(4, 4, 4, kA);
  BccGeometry g8(8, 8, 8, kA);
  auto small = make_lnl(g4);
  auto large = make_lnl(g8);
  EXPECT_GT(large.memory_bytes(), small.memory_bytes());
}

}  // namespace
}  // namespace mmd::lat
