#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"
#include "util/units.h"
#include "util/vec3.h"

namespace mmd::util {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  EXPECT_EQ(a + b, Vec3(0.0, 2.5, 5.0));
  EXPECT_EQ(a - b, Vec3(2.0, 1.5, 1.0));
  EXPECT_EQ(a * 2.0, Vec3(2.0, 4.0, 6.0));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(-a, Vec3(-1.0, -2.0, -3.0));
  EXPECT_DOUBLE_EQ(a.dot(b), -1.0 + 1.0 + 6.0);
}

TEST(Vec3, NormAndDistance) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec3{}, v), 5.0);
  EXPECT_DOUBLE_EQ(distance2(Vec3{1, 1, 1}, Vec3{1, 1, 1}), 0.0);
}

TEST(Vec3, CrossProduct) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0};
  EXPECT_EQ(x.cross(y), Vec3(0, 0, 1));
  EXPECT_EQ(y.cross(x), Vec3(0, 0, -1));
}

TEST(Vec3, Normalized) {
  const Vec3 v{0.0, 0.0, 7.5};
  EXPECT_EQ(v.normalized(), Vec3(0, 0, 1));
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});
}

TEST(Vec3, IndexAccess) {
  Vec3 v{1, 2, 3};
  EXPECT_DOUBLE_EQ(v[0], 1);
  EXPECT_DOUBLE_EQ(v[1], 2);
  EXPECT_DOUBLE_EQ(v[2], 3);
  v[1] = 9;
  EXPECT_DOUBLE_EQ(v.y, 9);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, SplitIsDeterministicPerStream) {
  // Two generators with the same seed derive identical streams for the same
  // stream id — the property that makes per-atom streams rank-independent
  // (every rank splits from a fresh generator seeded with the run seed).
  Rng a(7), b(7);
  Rng s1 = a.split(42);
  Rng s2 = b.split(42);
  EXPECT_EQ(s1.next_u64(), s2.next_u64());
}

TEST(Rng, DistinctStreams) {
  Rng a(7);
  Rng s1 = a.split(1), s2 = a.split(2);
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(Rng, UniformRange) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(5);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 1.0, 0.03);
}

TEST(Rng, UnitVectorIsUnit) {
  Rng r(3);
  RunningStats sx;
  for (int i = 0; i < 20000; ++i) {
    const Vec3 v = r.unit_vector();
    ASSERT_NEAR(v.norm(), 1.0, 1e-12);
    sx.add(v.x);
  }
  EXPECT_NEAR(sx.mean(), 0.0, 0.02);  // isotropy (first moment)
}

TEST(Rng, UniformIndexBounds) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto k = r.uniform_index(7);
    ASSERT_LT(k, 7u);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 7u);  // all buckets hit
}

TEST(RunningStats, WelfordMatchesDirect) {
  RunningStats s;
  const double xs[] = {1.0, 2.0, 4.0, 8.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.75);
  EXPECT_NEAR(s.variance(), 9.583333333333334, 1e-12);
}

TEST(RunningStats, AddTracksMinMax) {
  // add() maintains min/max itself — there is no separate tracked variant to
  // forget to call.
  RunningStats s;
  s.add(-2.0);
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  RunningStats negatives;
  negatives.add(-3.0);
  EXPECT_DOUBLE_EQ(negatives.min(), -3.0);
  EXPECT_DOUBLE_EQ(negatives.max(), -3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  const double xs[] = {1.0, 2.0, 4.0, 8.0, -1.0, 3.5};
  for (int i = 0; i < 6; ++i) {
    (i < 3 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());

  RunningStats empty;
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), all.count());
  empty.merge(a);  // adopt
  EXPECT_NEAR(empty.mean(), all.mean(), 1e-12);
}

TEST(Histogram, Totals) {
  Histogram h;
  h.add(1, 5);
  h.add(3, 2);
  h.add(10);
  EXPECT_EQ(h.total(), 8u);
  EXPECT_EQ(h.weighted_total(), 5 + 6 + 10);
  EXPECT_EQ(h.max_key(), 10);
  EXPECT_NEAR(h.mean_key(), 21.0 / 8.0, 1e-12);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, MedianOddEvenEmpty) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MedianAbsDeviation) {
  // xs = {1,2,3,4,100}: median 3, |xi - 3| = {2,1,0,1,97}, MAD = 1. The
  // outlier moves the MAD not at all — that robustness is why the bench
  // harness keys its noise gate on it.
  EXPECT_DOUBLE_EQ(median_abs_deviation({1.0, 2.0, 3.0, 4.0, 100.0}), 1.0);
  EXPECT_DOUBLE_EQ(median_abs_deviation({5.0, 5.0, 5.0}), 0.0);
  EXPECT_DOUBLE_EQ(median_abs_deviation({}), 0.0);
}

namespace {

double exact_quantile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  const double rank = p * (static_cast<double>(xs.size()) - 1.0);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace

TEST(P2Quantile, RejectsOutOfRangeProbability) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2Quantile, ExactForFirstFiveSamples) {
  P2Quantile q(0.5);
  EXPECT_DOUBLE_EQ(q.value(), 0.0);  // empty
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
  q.add(1.0);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);  // nearest-rank on {1,3,5}
  q.add(2.0);
  q.add(4.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);  // exact median of {1..5}
}

TEST(P2Quantile, UniformStreamMatchesExactQuantiles) {
  Rng r(2024);
  std::vector<double> xs;
  P2Quantile p50(0.5), p95(0.95), p99(0.99);
  for (int i = 0; i < 20000; ++i) {
    const double x = r.uniform();
    xs.push_back(x);
    p50.add(x);
    p95.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value(), exact_quantile(xs, 0.5), 0.01);
  EXPECT_NEAR(p95.value(), exact_quantile(xs, 0.95), 0.01);
  EXPECT_NEAR(p99.value(), exact_quantile(xs, 0.99), 0.01);
}

TEST(P2Quantile, ExponentialTailWithinRelativeTolerance) {
  // Heavy right tail — the case a mean-based summary hides and the p95/p99
  // markers are for. P² stays within a few percent of the exact quantile.
  Rng r(7);
  std::vector<double> xs;
  P2Quantile p50(0.5), p95(0.95), p99(0.99);
  for (int i = 0; i < 50000; ++i) {
    const double x = -std::log(1.0 - r.uniform());
    xs.push_back(x);
    p50.add(x);
    p95.add(x);
    p99.add(x);
  }
  EXPECT_NEAR(p50.value() / exact_quantile(xs, 0.5), 1.0, 0.05);
  EXPECT_NEAR(p95.value() / exact_quantile(xs, 0.95), 1.0, 0.05);
  EXPECT_NEAR(p99.value() / exact_quantile(xs, 0.99), 1.0, 0.05);
}

TEST(P2Quantile, AdversarialSortedStream) {
  // Monotone input is the classic P² stress case: every sample lands past the
  // last marker. The estimate must stay sane (within the data range and near
  // the true quantile for a linear ramp).
  P2Quantile p95(0.95);
  const int n = 10000;
  for (int i = 0; i < n; ++i) p95.add(static_cast<double>(i));
  EXPECT_GE(p95.value(), 0.0);
  EXPECT_LE(p95.value(), static_cast<double>(n - 1));
  EXPECT_NEAR(p95.value() / (0.95 * (n - 1)), 1.0, 0.02);

  P2Quantile p50(0.5);
  for (int i = n; i > 0; --i) p50.add(static_cast<double>(i));  // descending
  EXPECT_NEAR(p50.value() / (0.5 * n), 1.0, 0.05);
}

TEST(QuantileStats, ForwardsBaseAndTracksTails) {
  QuantileStats s;
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 1000.0);
  EXPECT_NEAR(s.p50() / 500.0, 1.0, 0.05);
  EXPECT_NEAR(s.p95() / 950.0, 1.0, 0.05);
  EXPECT_NEAR(s.p99() / 990.0, 1.0, 0.05);
}

TEST(Units, ForceAccelConversionConsistency) {
  // 1 eV/(A*amu) in A/ps^2, and its inverse used for kinetic energy.
  EXPECT_NEAR(units::kForceToAccel * units::kVel2ToEnergy, 1.0, 1e-12);
  // kB at room temperature ~ 0.0259 eV / 300 K.
  EXPECT_NEAR(units::kBoltzmann * 300.0, 0.02585, 1e-4);
}

TEST(Timer, AccumulatesIntervals) {
  AccumTimer t;
  t.start();
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  t.stop();
  EXPECT_GT(t.total(), 0.0);
  const double after_first = t.total();
  t.start();
  t.stop();
  EXPECT_GE(t.total(), after_first);
  t.clear();
  EXPECT_EQ(t.total(), 0.0);
}

TEST(Timer, StopWithoutStartIsNoop) {
  AccumTimer t;
  t.stop();
  EXPECT_EQ(t.total(), 0.0);
  t.start();
  t.stop();
  t.stop();  // second stop: interval already closed, still a no-op
  const double closed = t.total();
  EXPECT_EQ(t.total(), closed);
}

TEST(Timer, RestartAccumulatesOpenInterval) {
  // start() on a running timer must fold the open interval into the total
  // (historically it silently discarded it).
  AccumTimer t;
  t.start();
  Timer ref;
  volatile double x = 0;
  for (int i = 0; i < 200000; ++i) x = x + 1.0;
  const double open_for_at_least = ref.elapsed();
  t.start();  // restart: the interval above must not be lost
  t.stop();
  EXPECT_GE(t.total(), open_for_at_least);
}

}  // namespace
}  // namespace mmd::util
