#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "util/json.h"

namespace mmd::util::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").boolean());
  EXPECT_FALSE(parse("false").boolean());
  EXPECT_DOUBLE_EQ(parse("42").number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-1.5e3").number(), -1500.0);
  EXPECT_EQ(parse("\"hi\"").str(), "hi");
}

TEST(Json, ParsesNestedContainers) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.is_object());
  const Array& a = v.at("a").array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].number(), 1.0);
  EXPECT_TRUE(a[2].at("b").boolean());
  EXPECT_EQ(v.at("c").str(), "x");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const Object& o = v.object();
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").str(), "a\"b\\c\nd\te");
  // A = 'A'; é = e-acute, two UTF-8 bytes.
  EXPECT_EQ(parse(R"("A")").str(), "A");
  EXPECT_EQ(parse(R"("é")").str(), "\xc3\xa9");
}

TEST(Json, FindAndAt) {
  const Value v = parse(R"({"x": 1})");
  ASSERT_NE(v.find("x"), nullptr);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(parse("3").find("x"), nullptr);  // non-object: absent, not a throw
  EXPECT_THROW(v.at("missing"), Error);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(parse("1").str(), Error);
  EXPECT_THROW(parse("\"s\"").number(), Error);
  EXPECT_THROW(parse("[1]").object(), Error);
}

TEST(Json, MalformedInputThrowsWithOffset) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("[1,]"), Error);
  EXPECT_THROW(parse("{\"a\" 1}"), Error);
  EXPECT_THROW(parse("tru"), Error);
  try {
    parse("[1, 2, oops]");
    FAIL() << "expected json::Error";
  } catch (const Error& e) {
    EXPECT_GT(e.offset(), 0u);
  }
}

TEST(Json, TrailingGarbageIsAnError) {
  EXPECT_THROW(parse("1 2"), Error);
  EXPECT_THROW(parse("{} x"), Error);
  EXPECT_NO_THROW(parse("  {}  "));  // surrounding whitespace is fine
}

TEST(Json, ParseFileRoundTrip) {
  const std::string path = testing::TempDir() + "mmd_test_json.json";
  {
    std::ofstream os(path);
    os << R"({"n": 2.5, "tags": ["a", "b"]})";
  }
  const Value v = parse_file(path);
  EXPECT_DOUBLE_EQ(v.at("n").number(), 2.5);
  EXPECT_EQ(v.at("tags").array()[1].str(), "b");
  EXPECT_THROW(parse_file(path + ".does-not-exist"), Error);
}

}  // namespace
}  // namespace mmd::util::json
