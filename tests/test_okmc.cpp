#include <gtest/gtest.h>

#include <cmath>

#include "kmc/okmc.h"

namespace mmd::kmc {
namespace {

OkmcConfig cfg600() {
  OkmcConfig c;
  c.nx = c.ny = c.nz = 16;
  c.temperature = 600.0;
  return c;
}

TEST(Okmc, EmptyEngineNoEvents) {
  OkmcEngine e(cfg600());
  EXPECT_FALSE(e.step());
  EXPECT_EQ(e.total_vacancies(), 0);
  EXPECT_DOUBLE_EQ(e.mean_cluster_size(), 0.0);
}

TEST(Okmc, RateModelMonotonicity) {
  OkmcEngine e(cfg600());
  // Bigger clusters diffuse slower...
  EXPECT_GT(e.hop_rate(1), e.hop_rate(4));
  EXPECT_GT(e.hop_rate(4), e.hop_rate(32));
  // ...and bind their vacancies more strongly.
  EXPECT_GT(e.binding_energy(8), e.binding_energy(2));
  EXPECT_DOUBLE_EQ(e.binding_energy(1), 0.0);
  EXPECT_DOUBLE_EQ(e.emission_rate(1), 0.0);
  EXPECT_GT(e.emission_rate(2), 0.0);
  // Binding approaches the formation energy from below.
  EXPECT_LT(e.binding_energy(1000), cfg600().formation_energy);
  EXPECT_GT(e.binding_energy(1000), e.binding_energy(2));
}

TEST(Okmc, CaptureRadiusGrowsWithSize) {
  OkmcEngine e(cfg600());
  EXPECT_NEAR(e.capture_radius(8), 2.0 * e.capture_radius(1), 1e-12);
}

TEST(Okmc, ImmediateCoalescenceOnInit) {
  OkmcEngine e(cfg600());
  // Two vacancies closer than the combined capture radius merge at init.
  e.initialize({{10.0, 10.0, 10.0}, {12.0, 10.0, 10.0}});
  EXPECT_EQ(e.objects().size(), 1u);
  EXPECT_EQ(e.objects()[0].size, 2);
  EXPECT_EQ(e.total_vacancies(), 2);
}

TEST(Okmc, DistantObjectsStaySeparate) {
  OkmcEngine e(cfg600());
  e.initialize({{5.0, 5.0, 5.0}, {30.0, 30.0, 30.0}});
  EXPECT_EQ(e.objects().size(), 2u);
}

TEST(Okmc, VacancyConservation) {
  OkmcEngine e(cfg600());
  util::Rng rng(9);
  std::vector<util::Vec3> seeds;
  const double L = 16 * cfg600().lattice_constant;
  for (int i = 0; i < 40; ++i) {
    seeds.push_back({rng.uniform(0, L), rng.uniform(0, L), rng.uniform(0, L)});
  }
  e.initialize(seeds);
  const std::int64_t n0 = e.total_vacancies();
  EXPECT_EQ(n0, 40);
  e.run_events(500);
  EXPECT_EQ(e.total_vacancies(), n0);
  EXPECT_GT(e.events(), 0u);
  EXPECT_GT(e.time(), 0.0);
}

TEST(Okmc, ClusteringProgresses) {
  // Diffusing monovacancies aggregate: mean cluster size grows.
  OkmcEngine e(cfg600());
  util::Rng rng(11);
  std::vector<util::Vec3> seeds;
  const double L = 16 * cfg600().lattice_constant;
  for (int i = 0; i < 60; ++i) {
    seeds.push_back({rng.uniform(0, L), rng.uniform(0, L), rng.uniform(0, L)});
  }
  e.initialize(seeds);
  const double mean0 = e.mean_cluster_size();
  e.run_events(3000);
  EXPECT_GT(e.mean_cluster_size(), mean0);
  EXPECT_LT(e.objects().size(), seeds.size());
}

TEST(Okmc, PositionsStayInBox) {
  OkmcEngine e(cfg600());
  e.initialize({{1.0, 1.0, 1.0}});
  e.run_events(2000);
  const double L = 16 * cfg600().lattice_constant;
  for (const auto& o : e.objects()) {
    EXPECT_GE(o.r.x, 0.0);
    EXPECT_LT(o.r.x, L);
    EXPECT_GE(o.r.y, 0.0);
    EXPECT_LT(o.r.y, L);
    EXPECT_GE(o.r.z, 0.0);
    EXPECT_LT(o.r.z, L);
  }
}

TEST(Okmc, HistogramConsistent) {
  OkmcEngine e(cfg600());
  e.initialize({{5, 5, 5}, {6, 5, 5}, {40, 40, 40}});
  const auto h = e.size_histogram();
  EXPECT_EQ(h.weighted_total(), e.total_vacancies());
  EXPECT_EQ(h.total(), e.objects().size());
}

TEST(Okmc, EmissionEventuallyBreaksClusters) {
  // At high temperature with weak binding, a dimer should split within a
  // bounded number of events.
  OkmcConfig c = cfg600();
  c.temperature = 1400.0;
  c.binding_e2 = 0.05;
  c.mobility_slope = 2.0;  // suppress hops so emission dominates
  OkmcEngine e(c);
  e.initialize({{20.0, 20.0, 20.0}, {21.0, 20.0, 20.0}});
  ASSERT_EQ(e.objects().size(), 1u);
  bool split = false;
  for (int i = 0; i < 5000 && !split; ++i) {
    e.step();
    split = e.objects().size() > 1;
  }
  EXPECT_TRUE(split);
}

TEST(Okmc, DeterministicWithSeed) {
  auto run = [] {
    OkmcEngine e(cfg600());
    e.initialize({{5, 5, 5}, {30, 30, 30}, {15, 40, 22}});
    e.run_events(200);
    return std::make_pair(e.time(), e.objects().size());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mmd::kmc
