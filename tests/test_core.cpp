#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/simulation.h"
#include "util/key_value.h"

namespace mmd::core {
namespace {

TEST(Scenario, MdSimdKeyParsesAutoAndOff) {
  const auto parse = [](const std::string& text) {
    return scenario_from_kv(util::KeyValueConfig::parse(text));
  };
  EXPECT_TRUE(parse("box = 6\n").use_simd_force);  // default: auto
  EXPECT_TRUE(parse("box = 6\nmd.simd = auto\n").use_simd_force);
  EXPECT_FALSE(parse("box = 6\nmd.simd = off\n").use_simd_force);
  EXPECT_THROW(parse("box = 6\nmd.simd = on\n"), std::invalid_argument);
}

TEST(Scenario, SampleKeysParseWithDefaults) {
  const auto parse = [](const std::string& text) {
    return scenario_from_kv(util::KeyValueConfig::parse(text));
  };
  const auto off = parse("box = 6\n");
  EXPECT_EQ(off.sampling.mode, SamplingPolicy::Mode::Off);
  EXPECT_FALSE(off.sampling.enabled());
  EXPECT_EQ(off.sampling.window, 5);
  EXPECT_EQ(off.sampling.stride, 45);
  EXPECT_EQ(off.sampling.replicates, 8);

  const auto scd = parse(
      "box = 6\nsample.mode = scd\nsample.window = 3\n"
      "sample.stride = 21\nsample.replicates = 16\n");
  EXPECT_EQ(scd.sampling.mode, SamplingPolicy::Mode::Scd);
  EXPECT_TRUE(scd.sampling.enabled());
  EXPECT_EQ(scd.sampling.window, 3);
  EXPECT_EQ(scd.sampling.stride, 21);
  EXPECT_EQ(scd.sampling.replicates, 16);
}

TEST(Scenario, SampleKeysRejectInvalidValues) {
  const auto parse = [](const std::string& text) {
    return scenario_from_kv(util::KeyValueConfig::parse(text));
  };
  EXPECT_THROW(parse("box = 6\nsample.mode = fast\n"), std::invalid_argument);
  EXPECT_THROW(parse("box = 6\nsample.mode = scd\nsample.window = 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("box = 6\nsample.mode = scd\nsample.stride = 0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("box = 6\nsample.mode = scd\nsample.replicates = 1\n"),
               std::invalid_argument);
  // Off mode skips the schedule validation: the values are inert.
  EXPECT_NO_THROW(parse("box = 6\nsample.window = 0\n"));
}

TEST(Scenario, SampleKeyTypoIsAttributedToFileAndLine) {
  // A misspelled sample key must not silently fall through to the default:
  // reject_unknown_keys() names the offending source line.
  auto kv = util::KeyValueConfig::parse(
      "box = 6\nsample.windw = 3\nsample.mode = scd\n", "scn.mmd");
  scenario_from_kv(kv);  // consumes every recognized key
  try {
    kv.reject_unknown_keys();
    FAIL() << "expected reject_unknown_keys to throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("scn.mmd:2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sample.windw"), std::string::npos) << msg;
  }
}

SimulationConfig tiny_config() {
  SimulationConfig cfg;
  cfg.md.nx = cfg.md.ny = cfg.md.nz = 8;
  cfg.md.temperature = 300.0;
  cfg.md.table_segments = 800;
  cfg.kmc_table_segments = 400;
  cfg.md_time_ps = 0.05;
  cfg.pka_count = 2;
  cfg.pka_energy_ev = 70.0;
  cfg.kmc_cycles = 10;
  cfg.nranks = 1;
  return cfg;
}

TEST(Simulation, EndToEndProducesDefectsAndEvolvesThem) {
  Simulation sim(tiny_config());
  const SimulationReport r = sim.run();
  // The cascade created Frenkel pairs...
  EXPECT_GT(r.md_defects.vacancies, 0u);
  EXPECT_GT(r.md_defects.interstitials, 0u);
  // ...handed to KMC unchanged...
  EXPECT_EQ(r.clusters_after_md.num_vacancies, r.md_defects.vacancies);
  EXPECT_EQ(r.clusters_after_kmc.num_vacancies, r.md_defects.vacancies);
  // ...which evolved them in MC time.
  EXPECT_GT(r.kmc_mc_time, 0.0);
  EXPECT_GT(r.vacancy_concentration, 0.0);
  EXPECT_GT(r.real_time_days, 0.0);
  EXPECT_GT(r.md_seconds, 0.0);
  EXPECT_GT(r.kmc_seconds, 0.0);
}

TEST(Simulation, DeterministicWithSeed) {
  SimulationConfig cfg = tiny_config();
  cfg.md_time_ps = 0.03;
  cfg.kmc_cycles = 4;
  Simulation a(cfg), b(cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.md_defects.vacancies, rb.md_defects.vacancies);
  EXPECT_EQ(ra.md_defects.interstitials, rb.md_defects.interstitials);
  EXPECT_EQ(ra.kmc_events, rb.kmc_events);
  EXPECT_EQ(ra.clusters_after_kmc.num_clusters, rb.clusters_after_kmc.num_clusters);
}

TEST(Simulation, ParallelMatchesSerialDefectCounts) {
  SimulationConfig cfg = tiny_config();
  cfg.md_time_ps = 0.03;
  cfg.kmc_cycles = 4;
  Simulation serial(cfg);
  const auto rs = serial.run();
  cfg.nranks = 4;
  Simulation parallel(cfg);
  const auto rp = parallel.run();
  EXPECT_EQ(rs.md_defects.vacancies, rp.md_defects.vacancies);
  EXPECT_EQ(rs.md_defects.interstitials, rp.md_defects.interstitials);
}

TEST(Simulation, ReportToStringMentionsKeyNumbers) {
  SimulationConfig cfg = tiny_config();
  cfg.md_time_ps = 0.02;
  cfg.kmc_cycles = 2;
  Simulation sim(cfg);
  const auto r = sim.run();
  const std::string s = to_string(r);
  EXPECT_NE(s.find("MD stage"), std::string::npos);
  EXPECT_NE(s.find("KMC stage"), std::string::npos);
  EXPECT_NE(s.find("Temporal scale"), std::string::npos);
}

TEST(Simulation, AlloyPipelineCarriesSolutes) {
  SimulationConfig cfg = tiny_config();
  cfg.md_time_ps = 0.02;
  cfg.kmc_cycles = 3;
  cfg.solute_fraction = 0.08;
  cfg.nranks = 2;
  Simulation sim(cfg);
  const auto r = sim.run();
  // The alloy pipeline still produces and evolves damage.
  EXPECT_GT(r.md_defects.vacancies, 0u);
  EXPECT_EQ(r.clusters_after_kmc.num_vacancies, r.md_defects.vacancies);
  EXPECT_GT(r.kmc_mc_time, 0.0);
}

TEST(Simulation, AlloyDeterministic) {
  SimulationConfig cfg = tiny_config();
  cfg.md_time_ps = 0.02;
  cfg.kmc_cycles = 3;
  cfg.solute_fraction = 0.05;
  const auto a = Simulation(cfg).run();
  const auto b = Simulation(cfg).run();
  EXPECT_EQ(a.kmc_events, b.kmc_events);
  EXPECT_EQ(a.final_vacancies, b.final_vacancies);
}

TEST(Simulation, KmcStrategyDoesNotChangeOutcome) {
  SimulationConfig cfg = tiny_config();
  // Traditional KMC put-back needs subdomains of at least 5 cells per axis.
  cfg.md.nx = cfg.md.ny = cfg.md.nz = 10;
  cfg.md_time_ps = 0.03;
  cfg.kmc_cycles = 4;
  cfg.nranks = 2;
  cfg.kmc_strategy = kmc::GhostStrategy::Traditional;
  const auto rt = Simulation(cfg).run();
  cfg.kmc_strategy = kmc::GhostStrategy::OnDemandOneSided;
  const auto ro = Simulation(cfg).run();
  EXPECT_EQ(rt.kmc_events, ro.kmc_events);
  EXPECT_EQ(rt.clusters_after_kmc.num_clusters, ro.clusters_after_kmc.num_clusters);
  EXPECT_EQ(rt.clusters_after_kmc.max_size, ro.clusters_after_kmc.max_size);
}

}  // namespace
}  // namespace mmd::core
