#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "comm/world.h"
#include "lattice/ghost_exchange.h"
#include "lattice/lattice_neighbor_list.h"
#include "telemetry/comm_trace.h"
#include "telemetry/export.h"
#include "telemetry/session.h"

namespace mmd::telemetry {
namespace {

Session::Options recorder_options(std::size_t events_per_rank) {
  Session::Options o;
  o.comm_events_per_rank = events_per_rank;
  return o;
}

TEST(CommRecorder, RecordsSendAndRecvWithPeersAndSizes) {
  Session session(2, recorder_options(64));
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    if (comm.rank() == 0) {
      const double v = 3.5;
      comm.send_value(1, /*tag=*/7, v);
    } else {
      const auto m = comm.recv(0, 7);
      EXPECT_EQ(m.payload.size(), sizeof(double));
    }
  });

  const CommRecorder* rec = session.comm_recorder();
  ASSERT_NE(rec, nullptr);
  const auto& log0 = rec->rank_log(0);
  ASSERT_EQ(log0.events.size(), 1u);
  EXPECT_EQ(log0.events[0].op, CommOp::kSend);
  EXPECT_EQ(log0.events[0].peer, 1);
  EXPECT_EQ(log0.events[0].tag, 7);
  EXPECT_EQ(log0.events[0].bytes, sizeof(double));
  EXPECT_GE(log0.events[0].t1_ns, log0.events[0].t0_ns);

  const auto& log1 = rec->rank_log(1);
  ASSERT_EQ(log1.events.size(), 1u);
  EXPECT_EQ(log1.events[0].op, CommOp::kRecv);
  EXPECT_EQ(log1.events[0].peer, 0);
  EXPECT_EQ(log1.events[0].tag, 7);
  EXPECT_EQ(log1.events[0].bytes, sizeof(double));
  EXPECT_EQ(rec->total_dropped(), 0u);
}

TEST(CommRecorder, WaitRecordsReceivesButNotBufferedSends) {
  Session session(2, recorder_options(64));
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    const int peer = 1 - comm.rank();
    auto rx = comm.irecv(peer, 3);
    const std::uint32_t payload = 0xabcd;
    auto tx = comm.isend(peer, 3, std::span<const std::uint32_t>(&payload, 1));
    std::vector<comm::Request> rs;
    rs.push_back(std::move(rx));
    rs.push_back(std::move(tx));
    comm.wait_all(rs);
  });

  const CommRecorder* rec = session.comm_recorder();
  for (int r = 0; r < 2; ++r) {
    const auto& log = rec->rank_log(r);
    // Exactly: irecv post, buffered send, one wait completion (the receive).
    // The send request's wait must NOT show up as a receive.
    int sends = 0, waits = 0, posts = 0;
    for (const CommEvent& ev : log.events) {
      if (ev.op == CommOp::kSend) ++sends;
      if (ev.op == CommOp::kWait) ++waits;
      if (ev.op == CommOp::kIrecvPost) ++posts;
    }
    EXPECT_EQ(sends, 1) << "rank " << r;
    EXPECT_EQ(posts, 1) << "rank " << r;
    EXPECT_EQ(waits, 1) << "rank " << r;
    for (const CommEvent& ev : log.events) {
      if (ev.op != CommOp::kWait) continue;
      EXPECT_EQ(ev.peer, 1 - r);
      EXPECT_EQ(ev.bytes, sizeof(std::uint32_t));
    }
  }
}

TEST(CommRecorder, CollectivesRecordWildcardPeer) {
  Session session(2, recorder_options(64));
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    comm.barrier();
    (void)comm.allreduce_sum(1.0);
  });

  const auto& log = session.comm_recorder()->rank_log(0);
  ASSERT_EQ(log.events.size(), 2u);
  EXPECT_EQ(log.events[0].op, CommOp::kCollective);
  EXPECT_EQ(log.events[0].bytes, 0u);  // barrier carries no payload
  EXPECT_EQ(log.events[1].op, CommOp::kCollective);
  EXPECT_EQ(log.events[1].bytes, sizeof(double));
  EXPECT_EQ(log.events[1].peer, -1);
  EXPECT_EQ(log.events[1].tag, -1);
}

TEST(CommRecorder, OverflowDropsNewEventsAndCountsThem) {
  constexpr std::size_t kCap = 4;
  constexpr int kSends = 10;
  Session session(2, recorder_options(kCap));
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < kSends; ++i) comm.send_value(1, /*tag=*/i, i);
    } else {
      for (int i = 0; i < kSends; ++i) (void)comm.recv(0, i);
    }
  });

  const CommRecorder* rec = session.comm_recorder();
  const auto& log = rec->rank_log(0);
  EXPECT_EQ(log.events.size(), kCap);
  EXPECT_EQ(log.recorded, static_cast<std::uint64_t>(kSends));
  EXPECT_EQ(log.dropped(), static_cast<std::uint64_t>(kSends) - kCap);
  // Drop-new keeps the contiguous PREFIX (replay needs it), not the newest.
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    EXPECT_EQ(log.events[i].tag, static_cast<std::int32_t>(i));
  }
  // World::run publishes the per-rank drop count as a gauge.
  EXPECT_DOUBLE_EQ(
      session.metrics().rank(0).gauges.at("telemetry.trace.dropped"),
      static_cast<double>(kSends - kCap));
  EXPECT_DOUBLE_EQ(
      session.metrics().rank(1).gauges.at("telemetry.trace.dropped"),
      static_cast<double>(kSends - kCap));
  EXPECT_EQ(rec->total_dropped(), 2u * (kSends - kCap));
}

TEST(CommRecorder, ResetClearsLogsForLaneReuse) {
  Session session(2, recorder_options(8));
  comm::World world(2);
  world.run([](comm::Comm& comm) { comm.barrier(); });
  CommRecorder* rec = session.comm_recorder();
  ASSERT_GT(rec->total_recorded(), 0u);
  rec->reset();
  EXPECT_EQ(rec->total_recorded(), 0u);
  EXPECT_EQ(rec->total_dropped(), 0u);
  EXPECT_TRUE(rec->rank_log(0).events.empty());
  // Capacity survives reset: the lane records the next job into the same ring.
  EXPECT_EQ(rec->events_per_rank(), 8u);
}

TEST(CommTrace, BinaryRoundTripIsExact) {
  CommTraceData trace;
  trace.meta["scenario"] = "unit-test";
  trace.meta["steps"] = "17";
  trace.meta["atoms"] = "4096";
  trace.ranks.resize(2);
  CommEvent a;
  a.t0_ns = 100;
  a.t1_ns = 250;
  a.bytes = 1536;
  a.peer = 1;
  a.tag = 42;
  a.op = CommOp::kSend;
  CommEvent b;
  b.t0_ns = 300;
  b.t1_ns = 300;
  b.bytes = 0;
  b.peer = -1;
  b.tag = -1;
  b.op = CommOp::kCollective;
  trace.ranks[0].events = {a, b};
  trace.ranks[0].recorded = 7;  // 5 dropped
  trace.ranks[1].events = {};
  trace.ranks[1].recorded = 0;

  const std::string bytes = serialize_comm_trace(trace);
  const CommTraceData back = parse_comm_trace(bytes);

  EXPECT_EQ(back.version, kCommTraceVersion);
  EXPECT_EQ(back.meta, trace.meta);
  ASSERT_EQ(back.ranks.size(), 2u);
  EXPECT_EQ(back.ranks[0].recorded, 7u);
  ASSERT_EQ(back.ranks[0].events.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const CommEvent& e0 = trace.ranks[0].events[i];
    const CommEvent& e1 = back.ranks[0].events[i];
    EXPECT_EQ(e1.t0_ns, e0.t0_ns);
    EXPECT_EQ(e1.t1_ns, e0.t1_ns);
    EXPECT_EQ(e1.bytes, e0.bytes);
    EXPECT_EQ(e1.peer, e0.peer);
    EXPECT_EQ(e1.tag, e0.tag);
    EXPECT_EQ(e1.op, e0.op);
  }
  EXPECT_EQ(back.total_dropped(), 5u);
  EXPECT_EQ(back.total_stored(), 2u);
  EXPECT_EQ(back.meta_u64("steps", 1), 17u);
  EXPECT_EQ(back.meta_u64("absent", 99), 99u);
  EXPECT_EQ(back.meta_u64("scenario", 3), 3u);  // malformed -> fallback

  // Serialization is deterministic: round-tripping reproduces the bytes.
  EXPECT_EQ(serialize_comm_trace(back), bytes);
}

TEST(CommTrace, ParserRejectsCorruption) {
  CommTraceData trace;
  trace.ranks.resize(1);
  CommEvent ev;
  ev.op = CommOp::kWait;
  trace.ranks[0].events = {ev};
  trace.ranks[0].recorded = 1;
  std::string bytes = serialize_comm_trace(trace);

  EXPECT_THROW(parse_comm_trace(""), std::runtime_error);
  EXPECT_THROW(parse_comm_trace(bytes.substr(0, bytes.size() - 1)),
               std::runtime_error);

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(parse_comm_trace(bad_magic), std::runtime_error);

  std::string bad_version = bytes;
  bad_version[4] = static_cast<char>(0xee);
  EXPECT_THROW(parse_comm_trace(bad_version), std::runtime_error);

  std::string bad_op = bytes;
  bad_op.back() = static_cast<char>(kCommOpCount);  // op is the last field
  EXPECT_THROW(parse_comm_trace(bad_op), std::runtime_error);
}

TEST(CommTrace, RecorderSnapshotMatchesGhostExchangeByteCounters) {
  constexpr int kRanks = 4;
  Session session(kRanks, recorder_options(std::size_t{1} << 12));
  const lat::BccGeometry geo(8, 8, 8, 2.855);
  const lat::DomainDecomposition dd(geo, kRanks, 2);
  std::vector<std::uint64_t> ghost_bytes(kRanks, 0);
  comm::World world(kRanks);
  world.run([&](comm::Comm& comm) {
    lat::LatticeNeighborList lnl(geo, dd.local_box(comm.rank()), 5.0);
    lnl.fill_perfect(lat::Species::Fe);
    lnl.clear_ghosts();
    lat::GhostExchange ghosts(lnl, dd, comm.rank());
    ghosts.exchange(comm);
    ghost_bytes[static_cast<std::size_t>(comm.rank())] = ghosts.bytes_sent();
  });

  const auto trace = trace_from_recorder(*session.comm_recorder(),
                                         {{"scenario", "ghost-exchange"}});
  ASSERT_EQ(trace.ranks.size(), static_cast<std::size_t>(kRanks));
  EXPECT_EQ(trace.total_dropped(), 0u);
  for (int r = 0; r < kRanks; ++r) {
    // Per-rank send totals in the trace match both the exchange's own byte
    // counter and the world's traffic accounting — the recorder saw every
    // message, at its true size.
    std::uint64_t traced = 0;
    std::map<int, std::uint64_t> per_peer;
    for (const CommEvent& ev : trace.ranks[static_cast<std::size_t>(r)].events) {
      if (ev.op != CommOp::kSend) continue;
      traced += ev.bytes;
      per_peer[ev.peer] += ev.bytes;
    }
    EXPECT_EQ(traced, ghost_bytes[static_cast<std::size_t>(r)]) << "rank " << r;
    EXPECT_EQ(traced, world.traffic(r).p2p_bytes_sent) << "rank " << r;
    EXPECT_FALSE(per_peer.empty()) << "rank " << r;
    // Peers include the rank itself: periodic-wrap neighbors route through
    // comm uniformly, so a slab decomposition self-sends across the boundary.
    for (const auto& [peer, bytes] : per_peer) {
      EXPECT_GE(peer, 0);
      EXPECT_LT(peer, kRanks);
      EXPECT_GT(bytes, 0u);
    }
  }
  // Cross-check per-peer totals against the receivers: bytes rank r sent to
  // peer p must equal the kWait/kRecv bytes p completed from r.
  for (int r = 0; r < kRanks; ++r) {
    std::map<int, std::uint64_t> sent_to;
    for (const CommEvent& ev : trace.ranks[static_cast<std::size_t>(r)].events) {
      if (ev.op == CommOp::kSend) sent_to[ev.peer] += ev.bytes;
    }
    for (const auto& [peer, bytes] : sent_to) {
      std::uint64_t received = 0;
      for (const CommEvent& ev :
           trace.ranks[static_cast<std::size_t>(peer)].events) {
        if ((ev.op == CommOp::kWait || ev.op == CommOp::kRecv) && ev.peer == r) {
          received += ev.bytes;
        }
      }
      EXPECT_EQ(received, bytes) << "rank " << r << " -> " << peer;
    }
  }
}

TEST(CommTrace, ChromeTraceGainsFlowArrowsWithRecorder) {
  Session session(2, recorder_options(64));
  comm::World world(2);
  world.run([](comm::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, /*tag=*/5, 1.25);
    } else {
      (void)comm.recv(0, 5);
    }
  });

  std::ostringstream with_flows;
  write_chrome_trace(with_flows, session.tracer(), session.comm_recorder());
  const std::string out = with_flows.str();
  EXPECT_NE(out.find("\"comm.send\""), std::string::npos);
  EXPECT_NE(out.find("\"comm.recv\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(out.find("\"ph\":\"f\""), std::string::npos);  // flow finish
  EXPECT_NE(out.find("\"comm_events\":"), std::string::npos);
  EXPECT_NE(out.find("\"comm_dropped\":0"), std::string::npos);

  // Without a recorder the writer stays backward compatible: no comm slices.
  std::ostringstream plain;
  write_chrome_trace(plain, session.tracer());
  EXPECT_EQ(plain.str().find("\"cat\":\"comm\""), std::string::npos);
}

}  // namespace
}  // namespace mmd::telemetry
