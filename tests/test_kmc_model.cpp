#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kmc/model.h"

namespace mmd::kmc {
namespace {

KmcConfig small_config() {
  KmcConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.table_segments = 500;
  return cfg;
}

struct Rig {
  KmcConfig cfg;
  lat::BccGeometry geo;
  lat::DomainDecomposition dd;
  pot::EamTableSet tables;

  Rig(const KmcConfig& c, int nranks)
      : cfg(c),
        geo(c.nx, c.ny, c.nz, c.lattice_constant),
        dd(geo, nranks,
           lat::required_halo_cells(c.lattice_constant, c.cutoff) + 1),
        tables(pot::EamTableSet::build(
            pot::EamModel::iron(c.lattice_constant, c.cutoff), c.table_segments)) {}
};

TEST(RealTimeScale, MatchesPaperNumbers) {
  // Paper §3: t_threshold = 2e-4, C_MC = 2e-6, T = 600 K yields 19.2 days.
  // With the inverted formation energy E_v+ = 1.86 eV (see util/units.h) the
  // formula lands on the paper's figure.
  const double t_real = real_time_scale(2.0e-4, 2.0e-6, 600.0);
  const double days = t_real / 86400.0;
  EXPECT_GT(days, 15.0);
  EXPECT_LT(days, 25.0);
  // And the exact formula: C_real = exp(-E_v+ / (kB * 600)).
  const double c_real = std::exp(-util::iron::kVacancyFormationEnergy /
                                 (8.617333262e-5 * 600.0));
  EXPECT_NEAR(t_real, 2.0e-4 * 2.0e-6 / c_real, 1e-9 * t_real);
}

TEST(KmcModel, InitialStateAllIron) {
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  EXPECT_EQ(m.count_owned_vacancies(), 0u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m.state(i), SiteState::Fe);
  }
}

TEST(KmcModel, EightNearestNeighborEvents) {
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  EXPECT_EQ(m.nn_offsets(0).size(), 8u);
  EXPECT_EQ(m.nn_offsets(1).size(), 8u);
}

TEST(KmcModel, ImagesCoverWrappedCopies) {
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  // Single-rank box: a border site has ghost images on the far side.
  const std::int64_t gid = rig.geo.site_id({0, 0, 0, 0});
  std::vector<std::size_t> images;
  m.images_of_global(gid, images);
  EXPECT_GE(images.size(), 8u);  // 2 reps per axis
  for (std::size_t i : images) {
    EXPECT_EQ(m.site_rank_of(i), gid);
  }
}

TEST(KmcModel, SetStateGlobalKeepsImagesCoherent) {
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  const std::int64_t gid = rig.geo.site_id({0, 0, 0, 1});
  m.set_state_global(gid, SiteState::Vacancy);
  std::vector<std::size_t> images;
  m.images_of_global(gid, images);
  for (std::size_t i : images) {
    EXPECT_EQ(m.state(i), SiteState::Vacancy);
  }
  EXPECT_EQ(m.count_owned_vacancies(), 1u);
}

TEST(KmcModel, RhoAtPerfectLatticeMatchesCalibration) {
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  const pot::EamModel fe = pot::EamModel::iron(rig.cfg.lattice_constant, rig.cfg.cutoff);
  const std::size_t center = m.index_of_local({4, 4, 4, 0});
  EXPECT_NEAR(m.rho_at(center), fe.perfect_rho(0, rig.cfg.lattice_constant), 1e-4);
}

TEST(KmcModel, VacancyLowersNeighborRho) {
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  const std::size_t center = m.index_of_local({4, 4, 4, 0});
  const double rho0 = m.rho_at(center);
  // Remove a 1NN atom.
  m.set_state_global(rig.geo.site_id({4, 4, 4, 1}), SiteState::Vacancy);
  EXPECT_LT(m.rho_at(center), rho0);
}

TEST(KmcModel, RateFollowsArrhenius) {
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  const double kT = 8.617333262e-5 * rig.cfg.temperature;
  EXPECT_NEAR(m.rate(0.0),
              rig.cfg.prefactor * std::exp(-rig.cfg.migration_barrier / kT),
              1e-6 * m.rate(0.0));
  // Uphill exchanges are slower, downhill faster.
  EXPECT_LT(m.rate(0.4), m.rate(0.0));
  EXPECT_GT(m.rate(-0.4), m.rate(0.0));
  // Barrier clamp: extremely downhill events saturate.
  EXPECT_NEAR(m.rate(-100.0),
              rig.cfg.prefactor * std::exp(-rig.cfg.min_barrier / kT),
              1e-6 * m.rate(-100.0));
}

TEST(KmcModel, ExchangeDeSymmetricInBulk) {
  // Moving an atom into an isolated vacancy and the reverse move have
  // opposite energy changes (detailed-balance consistency).
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  const std::size_t vac = m.index_of_local({4, 4, 4, 0});
  const std::size_t atom = m.index_of_local({4, 4, 4, 1});
  m.set_state_global(m.site_rank_of(vac), SiteState::Vacancy);
  const double dE_fwd = m.exchange_dE(vac, atom);
  // Execute the swap.
  m.set_state_global(m.site_rank_of(vac), SiteState::Fe);
  m.set_state_global(m.site_rank_of(atom), SiteState::Vacancy);
  const double dE_rev = m.exchange_dE(atom, vac);
  EXPECT_NEAR(dE_fwd + dE_rev, 0.0, 1e-9);
}

TEST(KmcModel, IsolatedVacancyHopIsNeutral) {
  // In a perfect crystal all 8 hop destinations are equivalent: dE ~ 0.
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  const std::size_t vac = m.index_of_local({4, 4, 4, 0});
  m.set_state_global(m.site_rank_of(vac), SiteState::Vacancy);
  const auto& box = m.box();
  const auto c = box.coord_of(vac);
  for (const auto& o : m.nn_offsets(c.sub)) {
    const std::size_t nb =
        box.entry_index({c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub});
    EXPECT_NEAR(m.exchange_dE(vac, nb), 0.0, 1e-9);
  }
}

TEST(KmcModel, DivacancyBindingAffectsDe) {
  // A hop that separates two adjacent vacancies should differ energetically
  // from a hop within a perfect region.
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  const std::size_t v1 = m.index_of_local({4, 4, 4, 0});
  const std::size_t v2 = m.index_of_local({4, 4, 4, 1});
  m.set_state_global(m.site_rank_of(v1), SiteState::Vacancy);
  m.set_state_global(m.site_rank_of(v2), SiteState::Vacancy);
  // Hop candidate: v1 exchanges with a far-side atom neighbor.
  const auto c = m.box().coord_of(v1);
  double dE_any = 0.0;
  for (const auto& o : m.nn_offsets(c.sub)) {
    const std::size_t nb =
        m.box().entry_index({c.x + o.dx, c.y + o.dy, c.z + o.dz, o.to_sub});
    if (m.state(nb) == SiteState::Vacancy) continue;
    dE_any = m.exchange_dE(v1, nb);
    break;
  }
  EXPECT_GT(std::abs(dE_any), 1e-6);
}

TEST(KmcModel, MemoryIsOneBytePerSitePlusTables) {
  Rig rig(small_config(), 1);
  KmcModel m(rig.cfg, rig.geo, rig.dd, rig.tables, 0);
  EXPECT_LT(m.memory_bytes(), m.size() * 2 + (1u << 20));
}

TEST(KmcModel, ThrowsWhenHaloTooSmall) {
  KmcConfig cfg = small_config();
  lat::BccGeometry geo(cfg.nx, cfg.ny, cfg.nz, cfg.lattice_constant);
  lat::DomainDecomposition dd(geo, 1, 1);  // halo 1 < required
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), 200);
  EXPECT_THROW(KmcModel(cfg, geo, dd, tables, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mmd::kmc
