#include <gtest/gtest.h>

#include <cmath>

#include "analysis/defects.h"
#include "analysis/thermal.h"
#include "md/engine.h"

namespace mmd::analysis {
namespace {

TEST(ThermalProfile, RejectsBadArgs) {
  md::MdConfig cfg;
  lat::BccGeometry g(4, 4, 4, cfg.lattice_constant);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 4, 4, 4, 2}, 5.6);
  lnl.fill_perfect(lat::Species::Fe);
  EXPECT_THROW(thermal_profile(lnl, cfg, {0, 0, 0}, -1.0, 4), std::invalid_argument);
  EXPECT_THROW(thermal_profile(lnl, cfg, {0, 0, 0}, 5.0, 0), std::invalid_argument);
}

TEST(ThermalProfile, UniformThermalBathIsFlat) {
  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.temperature = 600.0;
  cfg.table_segments = 500;
  const md::MdSetup setup(cfg, 1);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
    engine.initialize(comm);
    const util::Vec3 center = setup.geo.box_length() * 0.5;
    const auto prof = thermal_profile(engine.lattice(), cfg, center, 11.0, 4);
    // Every shell near the initialization temperature (sampling noise grows
    // in the small inner shells).
    for (const auto& s : prof.shells) {
      if (s.atoms < 30) continue;
      EXPECT_NEAR(s.temperature, 600.0, 220.0) << s.r_lo;
    }
    EXPECT_NEAR(prof.mean_temperature(), 600.0, 100.0);
  });
}

TEST(ThermalProfile, CascadeCoreIsHot) {
  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 8;
  cfg.temperature = 100.0;
  cfg.table_segments = 500;
  const md::MdSetup setup(cfg, 1);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron(cfg.lattice_constant, cfg.cutoff), cfg.table_segments);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
    engine.initialize(comm);
    const lat::SiteCoord pka{4, 4, 4, 0};
    engine.inject_pka(comm, setup.geo.site_id(pka), {1, 0.5, 0.25}, 80.0);
    engine.run_for(comm, 0.004);  // early ballistic phase
    const auto prof = thermal_profile(engine.lattice(), cfg,
                                      setup.geo.position(pka), 11.0, 4);
    // The cascade core is far above the 100 K bath.
    EXPECT_GT(prof.core_temperature(), 1000.0);
    // The outermost shell stays near the bath.
    EXPECT_LT(prof.shells.back().temperature, 500.0);
  });
}

TEST(ClusterPositions, DistanceCutoffGroups) {
  const util::Vec3 box{20, 20, 20};
  const std::vector<util::Vec3> pts{
      {1, 1, 1}, {2, 1, 1}, {2.5, 1.5, 1}, {10, 10, 10}, {19.5, 1, 1}};
  const auto s = cluster_positions(pts, box, 1.6);
  // {1,2,2.5-chain + periodic 19.5 (1.5 away from x=1)} and the isolated one.
  EXPECT_EQ(s.num_points, 5u);
  EXPECT_EQ(s.num_clusters, 2u);
  EXPECT_EQ(s.max_size, 4u);
}

TEST(ClusterPositions, EmptyInput) {
  const auto s = cluster_positions({}, {10, 10, 10}, 2.0);
  EXPECT_EQ(s.num_clusters, 0u);
  EXPECT_DOUBLE_EQ(s.mean_size, 0.0);
}

TEST(ClusterInterstitials, CountsRunaways) {
  lat::BccGeometry g(6, 6, 6, 2.855);
  lat::LatticeNeighborList lnl(g, lat::LocalBox{0, 0, 0, 6, 6, 6, 2}, 5.0);
  lnl.fill_perfect(lat::Species::Fe);
  // Two adjacent detachments and one far away.
  for (const lat::LocalCoord c :
       {lat::LocalCoord{2, 2, 2, 0}, lat::LocalCoord{2, 2, 2, 1},
        lat::LocalCoord{5, 5, 5, 0}}) {
    lnl.detach(lnl.box().entry_index(c));
  }
  const auto s = cluster_interstitials(lnl);
  EXPECT_EQ(s.num_points, 3u);
  EXPECT_EQ(s.num_clusters, 2u);
  EXPECT_EQ(s.max_size, 2u);
}

TEST(MixedMass, MomentumConservedWithCopper) {
  md::MdConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 6;
  cfg.temperature = 400.0;
  cfg.table_segments = 500;
  const md::MdSetup setup(cfg, 1);
  const auto tables = pot::EamTableSet::build(
      pot::EamModel::iron_copper(cfg.lattice_constant, cfg.cutoff),
      cfg.table_segments);
  comm::World world(1);
  world.run([&](comm::Comm& comm) {
    md::MdEngine engine(cfg, setup.geo, setup.dd, tables, comm.rank());
    engine.initialize(comm);
    engine.seed_solutes(comm, 0.15);
    auto momentum = [&] {
      util::Vec3 p{};
      auto& lnl = engine.lattice();
      for (std::size_t i : lnl.owned_indices()) {
        const auto& e = lnl.entry(i);
        if (e.is_atom()) p += e.v * cfg.mass_of(e.type);
      }
      return p;
    };
    const util::Vec3 p0 = momentum();
    engine.run(comm, 20);
    const util::Vec3 p1 = momentum();
    EXPECT_NEAR((p1 - p0).norm(), 0.0, 1e-6 * std::max(1.0, p0.norm()));
    // Mixed-mass kinetic energy is consistent with temperature accounting.
    EXPECT_GT(engine.temperature(comm), 100.0);
  });
}

}  // namespace
}  // namespace mmd::analysis
