# Run a command and require a specific exit code — ctest's plain COMMAND can
# only assert zero/nonzero, but mmd_perf_diff's contract is the exact code
# (0 pass, 2 usage, 3 warn, 4 fail) and mmd_run's is 1 on unwritable outputs.
#
#   cmake -DCMD=<binary> "-DARGS=a;b;c" -DEXPECTED=<code> -P check_exit_code.cmake
if(NOT DEFINED CMD OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "check_exit_code.cmake requires -DCMD and -DEXPECTED")
endif()
execute_process(
  COMMAND ${CMD} ${ARGS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc STREQUAL "${EXPECTED}")
  message(FATAL_ERROR
    "${CMD} exited with '${rc}', expected ${EXPECTED}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
