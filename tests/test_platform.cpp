#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "perf/platform.h"
#include "perf/trace_replay.h"
#include "telemetry/comm_trace.h"
#include "util/json.h"

namespace mmd::perf {
namespace {

// ---------------------------------------------------------------- LogGP fit

TEST(LogGpModel, DefaultModelIsSingleSegmentFallback) {
  const LogGpModel m;
  ASSERT_EQ(m.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(m.message_time(0), 1.0e-6);
  EXPECT_GT(m.message_time(1 << 20), m.message_time(0));
}

TEST(LogGpModel, FitRecoversLinearCostPerSegment) {
  // Synthetic ground truth: o = 2 us, G = 1 ns/B, exercised across all four
  // default segments with enough spread for the per-segment solves.
  constexpr double kO = 2.0e-6;
  constexpr double kG = 1.0e-9;
  std::vector<MsgSample> samples;
  for (const std::uint64_t b :
       {std::uint64_t{8}, std::uint64_t{32}, std::uint64_t{64},
        std::uint64_t{128}, std::uint64_t{200}, std::uint64_t{512},
        std::uint64_t{1024}, std::uint64_t{2048}, std::uint64_t{3000},
        std::uint64_t{4000}, std::uint64_t{8192}, std::uint64_t{16384},
        std::uint64_t{32768}, std::uint64_t{50000}, std::uint64_t{65000},
        std::uint64_t{100000}, std::uint64_t{200000}, std::uint64_t{400000},
        std::uint64_t{800000}, std::uint64_t{1000000}}) {
    samples.push_back({b, kO + kG * static_cast<double>(b)});
  }
  const std::vector<std::uint64_t> breaks = {256, 4096, 65536};
  const LogGpModel m = LogGpModel::fit(samples, breaks);
  ASSERT_EQ(m.segments().size(), 4u);
  for (const auto& s : m.segments()) {
    EXPECT_NEAR(s.overhead_s, kO, 1e-8);
    EXPECT_NEAR(s.per_byte_s, kG, 1e-12);
  }
  EXPECT_NEAR(m.message_time(1000), kO + kG * 1000.0, 1e-8);
  EXPECT_NEAR(m.message_time(500000), kO + kG * 500000.0, 1e-7);
}

TEST(LogGpModel, FitFallsBackOnEmptyAndDegenerateInput) {
  const std::vector<std::uint64_t> breaks = {256, 4096, 65536};
  const LogGpModel empty = LogGpModel::fit({}, breaks);
  ASSERT_EQ(empty.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(empty.message_time(0), 1.0e-6);

  // One message size only: the per-segment least squares is singular, so
  // every segment falls back to the global fit — which is also singular and
  // must still produce a finite nonnegative model.
  std::vector<MsgSample> same(8, MsgSample{4096, 3.0e-6});
  const LogGpModel deg = LogGpModel::fit(same, breaks);
  for (std::uint64_t b : {std::uint64_t{0}, std::uint64_t{4096},
                          std::uint64_t{1000000}}) {
    EXPECT_TRUE(std::isfinite(deg.message_time(b)));
    EXPECT_GE(deg.message_time(b), 0.0);
  }
}

TEST(LogGpModel, FitClampsNegativeCoefficients) {
  // Decreasing cost with size would fit G < 0; the model clamps to zero so a
  // projection can never gain time by sending more bytes.
  std::vector<MsgSample> samples;
  for (int i = 1; i <= 12; ++i) {
    samples.push_back({static_cast<std::uint64_t>(i) * 100000,
                       1.0e-5 / static_cast<double>(i)});
  }
  const LogGpModel m = LogGpModel::fit(samples, std::vector<std::uint64_t>{});
  ASSERT_EQ(m.segments().size(), 1u);
  EXPECT_GE(m.segments()[0].per_byte_s, 0.0);
  EXPECT_GE(m.segments()[0].overhead_s, 0.0);
}

// --------------------------------------------------------------- topology

TEST(TopologyPlatform, HierarchyPlacementFollowsConfig) {
  const PlatformConfig cfg = PlatformConfig::taihulight();
  const TopologyPlatform p(cfg, 4096);
  EXPECT_EQ(p.nnodes(), 1024u);
  EXPECT_EQ(p.nsupernodes(), 4u);
  EXPECT_EQ(p.node_of(0), 0u);
  EXPECT_EQ(p.node_of(3), 0u);
  EXPECT_EQ(p.node_of(4), 1u);
  EXPECT_EQ(p.supernode_of(1023), 0u);
  EXPECT_EQ(p.supernode_of(1024), 1u);
}

TEST(TopologyPlatform, IntraNodeMessageStaysOffTheNetwork) {
  TopologyPlatform p(PlatformConfig::taihulight(), 8);
  const LogGpModel host;
  p.add_message(0, 1, 1 << 20, host);  // ranks 0 and 1 share node 0
  const auto cost = p.round_cost();
  EXPECT_EQ(cost.bottleneck, "intra_node");
  EXPECT_NEAR(cost.link_s, (1 << 20) / 32.0e9, 1e-12);
  EXPECT_DOUBLE_EQ(cost.latency_s, 0.2e-6);
  EXPECT_GT(cost.host_s, 0.0);
  EXPECT_NEAR(cost.total_s, cost.link_s + cost.host_s + cost.latency_s, 1e-15);
}

TEST(TopologyPlatform, CrossNodeMessageRidesTheNodeLink) {
  TopologyPlatform p(PlatformConfig::taihulight(), 8);
  const LogGpModel host;
  p.add_message(0, 4, 1 << 20, host);  // node 0 -> node 1, same supernode
  const auto cost = p.round_cost();
  EXPECT_EQ(cost.bottleneck, "node_link");
  EXPECT_NEAR(cost.link_s, (1 << 20) / 14.0e9, 1e-12);
  EXPECT_DOUBLE_EQ(cost.latency_s, 1.0e-6);
}

TEST(TopologyPlatform, OversubscribedTrunkBecomesTheBottleneck) {
  // One 1 MB message per node of supernode 0, all bound for supernode 1.
  // Each node link carries 1 MB, but the shared trunk carries 256 MB over
  // only 64 uplinks' worth of capacity — 4:1 oversubscription makes it the
  // bottleneck, which is exactly the paper's at-scale contention story.
  const PlatformConfig cfg = PlatformConfig::taihulight();
  TopologyPlatform p(cfg, 4096);
  const LogGpModel host;
  constexpr std::uint64_t kMsg = 1 << 20;
  for (std::uint64_t node = 0; node < 256; ++node) {
    p.add_message(node * 4, 1024 + node * 4, kMsg, host);
  }
  const auto cost = p.round_cost();
  EXPECT_EQ(cost.bottleneck, "supernode_uplink");
  const double trunk_bw = cfg.uplink.bandwidth_bps * cfg.uplinks_per_supernode;
  EXPECT_NEAR(cost.link_s, 256.0 * kMsg / trunk_bw, 1e-12);
  EXPECT_DOUBLE_EQ(cost.latency_s, 2.2e-6);

  // The flat (private-link) model cannot see the shared trunk: pricing the
  // same round without contention must be strictly cheaper.
  const auto flat = p.round_cost_no_contention();
  EXPECT_LT(flat.total_s, cost.total_s);

  p.reset();
  const auto zero = p.round_cost();
  EXPECT_DOUBLE_EQ(zero.total_s, 0.0);
}

TEST(TopologyPlatform, CollectiveTimeGrowsWithScale) {
  const PlatformConfig cfg = PlatformConfig::taihulight();
  const TopologyPlatform small(cfg, 4);
  const TopologyPlatform medium(cfg, 4096);
  const TopologyPlatform large(cfg, 163840);  // 40,960 nodes
  EXPECT_GT(small.collective_time(), 0.0);
  EXPECT_LT(small.collective_time(), medium.collective_time());
  EXPECT_LT(medium.collective_time(), large.collective_time());
}

TEST(NearCubicGrid, FactorizationsAreExactAndOrdered) {
  for (const std::uint64_t n :
       {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{12},
        std::uint64_t{64}, std::uint64_t{1600}, std::uint64_t{102400}}) {
    const Grid3 g = near_cubic_grid(n);
    EXPECT_EQ(g.x * g.y * g.z, n) << n;
    EXPECT_GE(g.x, g.y) << n;
    EXPECT_GE(g.y, g.z) << n;
  }
  const Grid3 cube = near_cubic_grid(64);
  EXPECT_EQ(cube.x, 4u);
  EXPECT_EQ(cube.y, 4u);
  EXPECT_EQ(cube.z, 4u);
  const Grid3 prime = near_cubic_grid(7);
  EXPECT_EQ(prime.x, 7u);
  EXPECT_EQ(prime.z, 1u);
}

// ---------------------------------------------------------------- replay

telemetry::CommTraceData synthetic_trace(std::uint64_t nranks,
                                         std::uint64_t steps,
                                         std::uint64_t bytes_per_msg) {
  telemetry::CommTraceData trace;
  trace.meta["scenario"] = "synthetic";
  trace.meta["ranks"] = std::to_string(nranks);
  trace.meta["steps"] = std::to_string(steps);
  trace.meta["atoms"] = std::to_string(2 * 10 * 10 * 10);
  trace.ranks.resize(nranks);
  for (std::uint64_t r = 0; r < nranks; ++r) {
    std::uint64_t t = 1000;
    for (std::uint64_t s = 0; s < steps; ++s) {
      for (int k = 0; k < 6; ++k) {  // six face-neighbor sends per step
        telemetry::CommEvent ev;
        ev.t0_ns = t;
        ev.t1_ns = t + 20000;  // 20 us per op
        ev.bytes = bytes_per_msg;
        ev.peer = static_cast<std::int32_t>((r + 1) % nranks);
        ev.tag = k;
        ev.op = telemetry::CommOp::kSend;
        trace.ranks[r].events.push_back(ev);
        t += 30000;
      }
    }
    trace.ranks[r].recorded = trace.ranks[r].events.size();
  }
  return trace;
}

TEST(TraceReplay, SummarizeDistillsPerRankStepShape) {
  const auto trace = synthetic_trace(8, 10, 32768);
  const TraceStats st = summarize_trace(trace);
  EXPECT_EQ(st.nranks, 8u);
  EXPECT_EQ(st.steps, 10u);
  EXPECT_EQ(st.events, 8u * 10u * 6u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_NEAR(st.sends_per_rank_step, 6.0, 1e-12);
  EXPECT_NEAR(st.bytes_per_rank_step, 6.0 * 32768.0, 1e-9);
  EXPECT_NEAR(st.peers_per_rank, 1.0, 1e-12);
  EXPECT_EQ(st.send_samples.size(), 8u * 10u * 6u);
  EXPECT_GT(st.wall_s, 0.0);
  EXPECT_GT(st.comm_s_per_step, 0.0);
}

TEST(TraceReplay, ProjectionHitsPaperCalibrationEndpoints) {
  const auto trace = synthetic_trace(8, 10, 32768);
  const ProjectionResult r = project_scaling(trace, ProjectionOptions{});

  // Paper Fig. 12 rows plus the full-machine extrapolation point.
  ASSERT_EQ(r.weak.size(), 7u);
  EXPECT_EQ(r.weak[0].cores, 104000u);
  EXPECT_EQ(r.weak[5].cores, 6656000u);
  EXPECT_EQ(r.weak[6].cores, 10649600u);
  EXPECT_NEAR(r.weak[5].paper_value, 0.85, 1e-12);
  // The compute calibration solves this endpoint exactly (that is its job);
  // everything between is the model's prediction.
  EXPECT_NEAR(r.weak[5].value, 0.85, 1e-3);
  for (const auto& p : r.weak) {
    EXPECT_GT(p.value, 0.0);
    EXPECT_LE(p.value, 1.0 + 1e-9);
    EXPECT_FALSE(p.bottleneck.empty());
    EXPECT_GT(p.time_s, 0.0);
  }

  // Paper Fig. 13 rows; speedup is relative to the first row.
  ASSERT_EQ(r.strong.size(), 7u);
  EXPECT_EQ(r.strong[0].cores, 97500u);
  EXPECT_NEAR(r.strong[0].value, 1.0, 1e-9);
  EXPECT_NEAR(r.strong.back().paper_value, 26.4, 1e-12);
  EXPECT_NEAR(r.strong.back().value, 26.4, 0.1);
  for (std::size_t i = 1; i < r.strong.size(); ++i) {
    EXPECT_GT(r.strong[i].value, r.strong[i - 1].value)
        << "speedup must increase monotonically through the paper range";
  }

  EXPECT_GT(r.weak_compute_s, 0.0);
  EXPECT_GT(r.strong_compute_s, 0.0);
}

TEST(TraceReplay, ContentionOnlyEverHurts) {
  const auto trace = synthetic_trace(8, 10, 65536);
  ProjectionOptions with;
  ProjectionOptions without;
  without.contention = false;
  const auto a = project_scaling(trace, with);
  const auto b = project_scaling(trace, without);
  ASSERT_EQ(a.weak.size(), b.weak.size());
  for (std::size_t i = 0; i < a.weak.size(); ++i) {
    EXPECT_GE(a.weak[i].comm_s, b.weak[i].comm_s * (1.0 - 1e-9)) << i;
  }
}

TEST(TraceReplay, RejectsEmptyTrace) {
  telemetry::CommTraceData empty;
  EXPECT_THROW(project_scaling(empty, ProjectionOptions{}), std::runtime_error);
}

TEST(TraceReplay, ProjectionJsonMatchesDocumentedSchema) {
  const auto trace = synthetic_trace(8, 10, 32768);
  const ProjectionResult r = project_scaling(trace, ProjectionOptions{});
  std::ostringstream os;
  write_projection_json(os, r);
  const util::json::Value doc = util::json::parse(os.str());

  EXPECT_EQ(doc.at("schema").str(), "mmd.trace_replay");
  EXPECT_DOUBLE_EQ(doc.at("schema_version").number(), 1.0);

  const auto& trace_obj = doc.at("trace");
  EXPECT_DOUBLE_EQ(trace_obj.at("ranks").number(), 8.0);
  EXPECT_DOUBLE_EQ(trace_obj.at("steps").number(), 10.0);
  EXPECT_DOUBLE_EQ(trace_obj.at("dropped").number(), 0.0);

  const auto& cal = doc.at("calibration");
  ASSERT_TRUE(cal.at("segments").is_array());
  ASSERT_FALSE(cal.at("segments").array().empty());
  // The last segment is unbounded: max_bytes serializes as null.
  EXPECT_TRUE(cal.at("segments").array().back().at("max_bytes").is_null());

  EXPECT_EQ(doc.at("platform").at("name").str(), "taihulight");
  EXPECT_TRUE(doc.at("platform").at("contention").boolean());

  for (const char* curve : {"weak", "strong"}) {
    const auto& c = doc.at(curve);
    ASSERT_TRUE(c.at("points").is_array()) << curve;
    EXPECT_EQ(c.at("points").array().size(), 7u) << curve;
    const char* value_key = std::string(curve) == "weak" ? "efficiency"
                                                         : "speedup";
    for (const auto& p : c.at("points").array()) {
      EXPECT_TRUE(p.at("cores").is_number()) << curve;
      EXPECT_TRUE(p.at(value_key).is_number()) << curve;
      EXPECT_TRUE(p.at("bottleneck").is_string()) << curve;
    }
  }
}

}  // namespace
}  // namespace mmd::perf
